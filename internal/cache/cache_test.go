package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 0, Ways: 1},
		{SizeBytes: 1024, LineBytes: 48, Ways: 1},   // not power of two
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},   // no ways
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},   // not divisible
		{SizeBytes: 64 * 3, LineBytes: 64, Ways: 1}, // 3 sets: not power of two
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access to same line missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next-line cold access hit")
	}
}

func TestHitsPlusMissesEqualsAccesses(t *testing.T) {
	prop := func(addrs []uint32) bool {
		c, err := New(Config{SizeBytes: 2048, LineBytes: 64, Ways: 4})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Hits()+c.Misses() == int64(len(addrs)) && c.Accesses() == int64(len(addrs))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessAfterAccessAlwaysHits(t *testing.T) {
	// Immediately re-touching any address must hit (the line was just
	// allocated).
	prop := func(addrs []uint32) bool {
		c, err := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 2})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped 2-line cache (2 sets x 1 way): lines mapping to the
	// same set evict each other.
	c := mustNew(t, Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	c.Access(0)   // set 0
	c.Access(128) // set 0, evicts line 0
	if c.Access(0) {
		t.Fatal("evicted line still hit")
	}
}

func TestLRUOrder(t *testing.T) {
	// Fully associative 4-way set: touch A B C D, then A (refresh),
	// then E — B must be the victim, not A.
	c := mustNew(t, Config{SizeBytes: 256, LineBytes: 64, Ways: 4})
	a, b0, c0, d, e := uint64(0), uint64(256), uint64(512), uint64(768), uint64(1024)
	c.Access(a)
	c.Access(b0)
	c.Access(c0)
	c.Access(d)
	c.Access(a) // refresh A
	c.Access(e) // evicts B (LRU)
	if !c.Contains(a) {
		t.Fatal("A was evicted despite refresh")
	}
	if c.Contains(b0) {
		t.Fatal("B survived despite being LRU")
	}
	if !c.Contains(c0) || !c.Contains(d) || !c.Contains(e) {
		t.Fatal("C/D/E should be resident")
	}
}

func TestWorkingSetWithinWaysNeverEvicts(t *testing.T) {
	// Property: cycling over k distinct lines of one set, k <= ways,
	// only cold-misses.
	prop := func(kRaw uint8, rounds uint8) bool {
		ways := 8
		k := int(kRaw%uint8(ways)) + 1
		c, err := New(Config{SizeBytes: int64Size(64 * ways * 4), LineBytes: 64, Ways: ways})
		if err != nil {
			return false
		}
		sets := c.Config().Sets()
		stride := uint64(sets * 64) // same set every time
		n := int(rounds%8) + 2
		for r := 0; r < n; r++ {
			for i := 0; i < k; i++ {
				c.Access(uint64(i) * stride)
			}
		}
		return c.Misses() == int64(k)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func int64Size(x int) int { return x }

func TestCyclicOverCapacityAlwaysMisses(t *testing.T) {
	// Cycling over ways+1 lines of one set under LRU misses every time.
	ways := 4
	c := mustNew(t, Config{SizeBytes: 64 * ways * 2, LineBytes: 64, Ways: ways})
	sets := c.Config().Sets()
	stride := uint64(sets * 64)
	k := ways + 1
	const rounds = 10
	for r := 0; r < rounds; r++ {
		for i := 0; i < k; i++ {
			c.Access(uint64(i) * stride)
		}
	}
	if c.Hits() != 0 {
		t.Fatalf("LRU thrash produced %d hits, want 0", c.Hits())
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("counters survived Reset")
	}
	if c.Access(0) {
		t.Fatal("contents survived Reset")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	c.Access(0)
	h, m := c.Hits(), c.Misses()
	c.Contains(0)
	c.Contains(999999)
	if c.Hits() != h || c.Misses() != m {
		t.Fatal("Contains changed counters")
	}
}

func TestStreamingPassMatchesSimulator(t *testing.T) {
	// The analytic streaming model must agree exactly with the real
	// simulator for cyclic sequential scans of aligned arrays, both
	// under and over capacity.
	cfg := Config{SizeBytes: 4096, LineBytes: 64, Ways: 4}
	for _, arrayBytes := range []int64{1024, 2048, 4096, 8192, 16384} {
		c := mustNew(t, cfg)
		const passes = 5
		for p := 0; p < passes; p++ {
			missesBefore := c.Misses()
			for a := int64(0); a < arrayBytes; a += 8 {
				c.Access(uint64(a))
			}
			got := c.Misses() - missesBefore
			want := StreamingPass(arrayBytes, int64(cfg.SizeBytes), int64(cfg.LineBytes), p == 0)
			if got != want {
				t.Fatalf("array=%dB pass=%d: simulator misses %d, analytic %d", arrayBytes, p, got, want)
			}
		}
	}
}

func TestStreamingSweepConsistent(t *testing.T) {
	prop := func(bRaw uint16, pRaw uint8) bool {
		bytes := (int64(bRaw%64) + 1) * 64
		passes := int(pRaw%6) + 1
		capacity, line := int64(2048), int64(64)
		total := StreamingSweep(bytes, capacity, line, passes)
		manual := StreamingPass(bytes, capacity, line, true)
		for p := 1; p < passes; p++ {
			manual += StreamingPass(bytes, capacity, line, false)
		}
		return total == manual
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingPassEdgeCases(t *testing.T) {
	if StreamingPass(0, 1024, 64, true) != 0 {
		t.Fatal("zero-byte pass should not miss")
	}
	if StreamingPass(-5, 1024, 64, true) != 0 {
		t.Fatal("negative bytes should not miss")
	}
	if StreamingSweep(128, 1024, 64, 0) != 0 {
		t.Fatal("zero passes should not miss")
	}
	// Partial line rounds up.
	if StreamingPass(65, 1024, 64, true) != 2 {
		t.Fatal("partial trailing line not counted")
	}
}

func TestHierarchyCosts(t *testing.T) {
	h, err := NewHierarchy(
		Config{SizeBytes: 128, LineBytes: 64, Ways: 1}, // tiny L1: 2 lines
		Config{SizeBytes: 1024, LineBytes: 64, Ways: 2},
		Latencies{L1Hit: 1, L2Hit: 10, Memory: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: miss both levels.
	if got := h.Access(0); got != 111 {
		t.Fatalf("cold access cost %v, want 111", got)
	}
	// Now resident in both: L1 hit.
	if got := h.Access(0); got != 1 {
		t.Fatalf("warm access cost %v, want 1", got)
	}
	// Evict from L1 (same set), keep in L2.
	h.Access(128) // set 0 of L1, evicts line 0 there; L2 has room
	if got := h.Access(0); got != 11 {
		t.Fatalf("L2-hit access cost %v, want 11", got)
	}
	if h.Cycles() != 111+1+111+11 {
		t.Fatalf("accumulated cycles %v", h.Cycles())
	}
}

func TestHierarchyReset(t *testing.T) {
	h, err := NewHierarchy(
		Config{SizeBytes: 1024, LineBytes: 64, Ways: 2},
		Config{SizeBytes: 4096, LineBytes: 64, Ways: 4},
		Latencies{L1Hit: 1, L2Hit: 10, Memory: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0)
	h.Reset()
	if h.Cycles() != 0 {
		t.Fatal("cycles survived Reset")
	}
	if got := h.Access(0); got != 111 {
		t.Fatalf("post-reset access cost %v, want 111 (cold)", got)
	}
}

func TestHierarchyRejectsBadConfigs(t *testing.T) {
	if _, err := NewHierarchy(Config{}, Config{SizeBytes: 1024, LineBytes: 64, Ways: 2}, Latencies{}); err == nil {
		t.Fatal("bad L1 accepted")
	}
	if _, err := NewHierarchy(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2}, Config{}, Latencies{}); err == nil {
		t.Fatal("bad L2 accepted")
	}
}

func BenchmarkAccess(b *testing.B) {
	c, err := New(Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*8) % (256 * 1024))
	}
}
