package cache

import "fmt"

// Latencies are the modeled access costs of a two-level hierarchy, in
// core cycles.
type Latencies struct {
	L1Hit  float64 // cost of an L1 hit (usually folded into the op cost; may be 0)
	L2Hit  float64 // additional cost when L1 misses but L2 hits
	Memory float64 // additional cost when both levels miss
}

// Hierarchy is an L1+L2 cache pair with a latency model. L2 is accessed
// only on L1 misses (non-inclusive, exclusive of timing subtleties —
// a first-order model).
type Hierarchy struct {
	L1, L2 *Cache
	Lat    Latencies

	cycles float64
}

// NewHierarchy builds a hierarchy from the two level configs.
func NewHierarchy(l1, l2 Config, lat Latencies) (*Hierarchy, error) {
	c1, err := New(l1)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	c2, err := New(l2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{L1: c1, L2: c2, Lat: lat}, nil
}

// Access touches addr and returns the modeled cycle cost of this
// access. The cost is also accumulated into Cycles.
func (h *Hierarchy) Access(addr uint64) float64 {
	cost := h.Lat.L1Hit
	if !h.L1.Access(addr) {
		if h.L2.Access(addr) {
			cost += h.Lat.L2Hit
		} else {
			cost += h.Lat.L2Hit + h.Lat.Memory
		}
	}
	h.cycles += cost
	return cost
}

// Cycles returns the total accumulated access cost.
func (h *Hierarchy) Cycles() float64 { return h.cycles }

// Reset clears both levels and the cycle counter.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.cycles = 0
}

// StreamingPass is the closed-form model of one sequential pass over a
// contiguous array of `bytes` bytes through an LRU cache level of
// capacity `capacity` with `lineBytes` lines, when the same array is
// scanned cyclically over and over (the MD force loop's pattern).
//
// For the steady state (all passes after the first):
//   - if the array fits (bytes <= capacity): zero misses — every line
//     stays resident;
//   - otherwise: every line misses — cyclic sequential access through
//     LRU always evicts the line that will be needed soonest (the
//     classic LRU worst case).
//
// The first (cold) pass misses every line regardless.
//
// The form is exact — not approximate — when the array is aligned to
// the set stride and spans a whole number of lines per set, because
// then every set sees the same cyclic sub-sequence of lines and LRU
// behaves identically in each; TestStreamingPassMatchesSimulator pins
// this against the real simulator.
func StreamingPass(bytes, capacity, lineBytes int64, cold bool) (misses int64) {
	if bytes <= 0 {
		return 0
	}
	lines := (bytes + lineBytes - 1) / lineBytes
	if cold {
		return lines
	}
	if bytes <= capacity {
		return 0
	}
	return lines
}

// StreamingSweep models p cyclic passes over the array: one cold pass
// plus p-1 steady-state passes.
func StreamingSweep(bytes, capacity, lineBytes int64, passes int) (misses int64) {
	if passes <= 0 {
		return 0
	}
	misses = StreamingPass(bytes, capacity, lineBytes, true)
	misses += int64(passes-1) * StreamingPass(bytes, capacity, lineBytes, false)
	return misses
}
