package brook

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vec"
)

// MDForces is the paper's acceleration computation written as a Brook
// program, the way the cited GROMACS-on-Brook work expressed kernels:
// a single Map over the position stream, plus a Reduce for the total
// potential energy (which a Brook programmer gets in one line — paying,
// as the ablation shows, the multi-pass cost the paper's hand-written
// port avoided by smuggling PE through the w component).
//
// It returns the accelerations, the total PE, and the accumulated
// modeled time for this invocation's operations.
func MDForces(rt *Runtime, pos []vec.V3[float32], box, cutoff float32) ([]vec.V3[float32], float32, *sim.Breakdown, error) {
	n := len(pos)
	if n == 0 {
		return nil, 0, sim.NewBreakdown(), nil
	}
	data := make([]Value, n)
	for i, p := range pos {
		data[i] = Value{p.X, p.Y, p.Z, 0}
	}
	positions := rt.StreamOf(data)

	half := box / 2
	rc2 := cutoff * cutoff
	accel, err := rt.Map(n, func(i int, gather func(int, int) Value, ops func(int)) Value {
		pi := gather(0, i)
		var ax, ay, az, pe float32
		for j := 0; j < n; j++ {
			pj := gather(0, j)
			dx, dy, dz := pi[0]-pj[0], pi[1]-pj[1], pi[2]-pj[2]
			dx -= box * selSign(dx, half)
			dy -= box * selSign(dy, half)
			dz -= box * selSign(dz, half)
			r2 := dx*dx + dy*dy + dz*dz
			var mask float32
			if r2 < rc2 && r2 > 0 {
				mask = 1
			}
			rsafe := r2
			if mask == 0 {
				rsafe = 1
			}
			sr2 := 1 / rsafe
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			pe += mask * 4 * (sr12 - sr6)
			f := mask * 24 * (2*sr12 - sr6) * sr2
			ax += f * dx
			ay += f * dy
			az += f * dz
			ops(16)
		}
		return Value{ax, ay, az, pe}
	}, positions)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("brook: MD map: %w", err)
	}

	// Brook's one-liner: reduce the PE stream. First project the w
	// component into x with another map (a real Brook compiler fuses
	// this; the extra pass is part of the abstraction's honest cost).
	peStream, err := rt.Map(n, func(i int, gather func(int, int) Value, ops func(int)) Value {
		v := gather(0, i)
		ops(1)
		return Value{v[3], 0, 0, 0}
	}, accel)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("brook: PE projection: %w", err)
	}
	peSum, err := rt.Reduce(peStream)
	if err != nil {
		return nil, 0, nil, err
	}

	out, err := rt.Read(accel)
	if err != nil {
		return nil, 0, nil, err
	}
	acc := make([]vec.V3[float32], n)
	for i, v := range out {
		acc[i] = vec.V3[float32]{X: v[0], Y: v[1], Z: v[2]}
	}
	return acc, peSum / 2, rt.Time(), nil
}

// selSign returns sign(d) when |d| > half, else 0.
func selSign(d, half float32) float32 {
	switch {
	case d > half:
		return 1
	case d < -half:
		return -1
	default:
		return 0
	}
}
