// Package brook is a miniature stream-programming layer over the GPU
// model, after the Brook language the paper cites (I. Buck, "Brook —
// Data Parallel Computation on Graphics Hardware"; section 4 notes
// GROMACS was accelerated through it). Section 3.2 describes the
// motivation: "a variety of solutions have now been announced or
// released to abstract or bypass the specialized graphics knowledge
// traditionally needed" — Brook programs never mention textures,
// passes, or framebuffers.
//
// The abstraction is three operations over 1-D streams of float4:
//
//	Map     — apply a kernel elementwise, with read-only gather streams
//	Reduce  — fold a stream to one value (compiled to the multi-pass
//	          GPU reduction)
//	Read    — bring a stream's contents back to the host
//
// Every operation compiles onto internal/gpu passes, so the modeled
// costs (pipeline compute, dispatches, PCIe) are exactly what the
// underlying graphics API would pay — which is the point: the
// abstraction is free to write, not free to run.
package brook

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Value is one stream element.
type Value = gpu.Float4

// Stream is a 1-D device-resident sequence of float4 values.
type Stream struct {
	name string
	tex  *gpu.Texture
	rt   *Runtime
}

// Runtime owns the device and the cost accounting for one program.
type Runtime struct {
	dev  *gpu.Device
	time *sim.Breakdown
	next int
}

// NewRuntime wraps a GPU device.
func NewRuntime(dev *gpu.Device) *Runtime {
	return &Runtime{dev: dev, time: sim.NewBreakdown()}
}

// Time returns the accumulated modeled cost of every operation so far.
func (rt *Runtime) Time() *sim.Breakdown { return rt.time }

// StreamOf uploads host data as a new stream (a PCIe transfer).
func (rt *Runtime) StreamOf(data []Value) *Stream {
	rt.next++
	s := &Stream{name: fmt.Sprintf("stream%d", rt.next), tex: gpu.NewTexture(fmt.Sprintf("stream%d", rt.next), data), rt: rt}
	rt.time.Add("pcie", rt.dev.TransferSec(16*len(data)))
	return s
}

// Len returns the stream length.
func (s *Stream) Len() int { return s.tex.Len() }

// Kernel is a Brook map kernel: it computes output element i from its
// own gather reads. The gather function reads element j of the named
// input stream; ops tallies arithmetic instructions.
type Kernel func(i int, gather func(stream int, j int) Value, ops func(n int)) Value

// Map applies the kernel over [0, outLen) with the given gather
// streams, producing a new stream. Gather streams are indexed by their
// position in the argument list.
func (rt *Runtime) Map(outLen int, k Kernel, gathers ...*Stream) (*Stream, error) {
	if outLen <= 0 {
		return nil, fmt.Errorf("brook: map output length must be positive, got %d", outLen)
	}
	texs := make([]*gpu.Texture, len(gathers))
	names := make([]string, len(gathers))
	for i, g := range gathers {
		if g.rt != rt {
			return nil, fmt.Errorf("brook: stream %q belongs to another runtime", g.name)
		}
		texs[i] = g.tex
		names[i] = g.tex.Name()
	}
	shader := gpu.ShaderFunc(func(smp *gpu.Sampler, i int) gpu.Float4 {
		gather := func(stream, j int) Value {
			if stream < 0 || stream >= len(names) {
				panic(fmt.Sprintf("brook: kernel gathered from stream %d of %d", stream, len(names)))
			}
			return smp.Fetch(names[stream], j)
		}
		return k(i, gather, smp.ALU)
	})
	pass, err := gpu.NewPass(shader, outLen, texs...)
	if err != nil {
		return nil, fmt.Errorf("brook: %w", err)
	}
	out, sec := rt.dev.Dispatch(pass)
	rt.time.Add("compute+dispatch", sec)
	rt.next++
	return &Stream{
		name: fmt.Sprintf("stream%d", rt.next),
		tex:  gpu.NewTexture(fmt.Sprintf("stream%d", rt.next), out),
		rt:   rt,
	}, nil
}

// Reduce folds the x components of the stream to one value using the
// multi-pass GPU reduction, then reads the single texel back.
func (rt *Runtime) Reduce(s *Stream) (float32, error) {
	if s.rt != rt {
		return 0, fmt.Errorf("brook: stream %q belongs to another runtime", s.name)
	}
	data := make([]Value, s.Len())
	for i := range data {
		data[i] = s.tex.At(i)
	}
	sum, _, sec := rt.dev.ReduceSum(data)
	rt.time.Add("compute+dispatch", sec)
	rt.time.Add("pcie", rt.dev.TransferSec(16))
	return sum, nil
}

// Read brings the stream's contents back to the host (a PCIe
// transfer).
func (rt *Runtime) Read(s *Stream) ([]Value, error) {
	if s.rt != rt {
		return nil, fmt.Errorf("brook: stream %q belongs to another runtime", s.name)
	}
	out := make([]Value, s.Len())
	for i := range out {
		out[i] = s.tex.At(i)
	}
	rt.time.Add("pcie", rt.dev.TransferSec(16*len(out)))
	return out, nil
}

// Write replaces the stream's contents (a PCIe upload).
func (rt *Runtime) Write(s *Stream, data []Value) error {
	if s.rt != rt {
		return fmt.Errorf("brook: stream %q belongs to another runtime", s.name)
	}
	if err := s.tex.Update(data); err != nil {
		return err
	}
	rt.time.Add("pcie", rt.dev.TransferSec(16*len(data)))
	return nil
}
