package brook

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/vec"
)

func newRT(t testing.TB) *Runtime {
	t.Helper()
	dev, err := gpu.New(gpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewRuntime(dev)
}

func TestMapElementwise(t *testing.T) {
	rt := newRT(t)
	in := rt.StreamOf([]Value{{1}, {2}, {3}})
	out, err := rt.Map(3, func(i int, gather func(int, int) Value, ops func(int)) Value {
		v := gather(0, i)
		ops(1)
		return Value{2 * v[0]}
	}, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v[0] != float32(2*(i+1)) {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}

func TestMapGatherAcrossStreams(t *testing.T) {
	rt := newRT(t)
	a := rt.StreamOf([]Value{{1}, {2}})
	b := rt.StreamOf([]Value{{10}, {20}})
	sum, err := rt.Map(2, func(i int, gather func(int, int) Value, ops func(int)) Value {
		ops(1)
		return Value{gather(0, i)[0] + gather(1, i)[0]}
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Read(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 11 || got[1][0] != 22 {
		t.Fatalf("got %v", got)
	}
}

func TestReduce(t *testing.T) {
	rt := newRT(t)
	data := make([]Value, 33)
	var want float32
	for i := range data {
		data[i] = Value{float32(i)}
		want += float32(i)
	}
	s := rt.StreamOf(data)
	sum, err := rt.Reduce(s)
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Fatalf("reduce = %v, want %v", sum, want)
	}
}

func TestWriteUpdatesStream(t *testing.T) {
	rt := newRT(t)
	s := rt.StreamOf([]Value{{1}})
	if err := rt.Write(s, []Value{{9}}); err != nil {
		t.Fatal(err)
	}
	got, err := rt.Read(s)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 9 {
		t.Fatalf("got %v", got)
	}
	if err := rt.Write(s, make([]Value, 5)); err == nil {
		t.Fatal("size-changing write accepted")
	}
}

func TestCrossRuntimeStreamsRejected(t *testing.T) {
	rt1 := newRT(t)
	rt2 := newRT(t)
	s := rt1.StreamOf([]Value{{1}})
	if _, err := rt2.Map(1, func(i int, g func(int, int) Value, ops func(int)) Value { return Value{} }, s); err == nil {
		t.Fatal("foreign stream accepted by Map")
	}
	if _, err := rt2.Read(s); err == nil {
		t.Fatal("foreign stream accepted by Read")
	}
	if _, err := rt2.Reduce(s); err == nil {
		t.Fatal("foreign stream accepted by Reduce")
	}
	if err := rt2.Write(s, []Value{{2}}); err == nil {
		t.Fatal("foreign stream accepted by Write")
	}
}

func TestMapValidation(t *testing.T) {
	rt := newRT(t)
	if _, err := rt.Map(0, func(i int, g func(int, int) Value, ops func(int)) Value { return Value{} }); err == nil {
		t.Fatal("zero-length map accepted")
	}
}

func TestOutOfRangeGatherPanics(t *testing.T) {
	rt := newRT(t)
	in := rt.StreamOf([]Value{{1}})
	defer func() {
		if recover() == nil {
			t.Fatal("gather from unbound stream did not panic")
		}
	}()
	rt.Map(1, func(i int, gather func(int, int) Value, ops func(int)) Value {
		return gather(5, 0)
	}, in)
}

func TestEveryOperationIsCosted(t *testing.T) {
	rt := newRT(t)
	s := rt.StreamOf(make([]Value, 64))
	before := rt.Time().Total()
	if before <= 0 {
		t.Fatal("upload not costed")
	}
	out, err := rt.Map(64, func(i int, g func(int, int) Value, ops func(int)) Value {
		ops(4)
		return g(0, i)
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	afterMap := rt.Time().Total()
	if afterMap <= before {
		t.Fatal("map not costed")
	}
	if _, err := rt.Reduce(out); err != nil {
		t.Fatal(err)
	}
	if rt.Time().Total() <= afterMap {
		t.Fatal("reduce not costed")
	}
}

func TestMDForcesMatchesReference(t *testing.T) {
	st, err := lattice.Generate(lattice.Config{
		N: 108, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := md.Params[float32]{Box: float32(st.Box), Cutoff: 2.5, Dt: 0.004}
	pos := make([]vec.V3[float32], len(st.Pos))
	for i := range pos {
		pos[i] = vec.FromV3f64[float32](st.Pos[i])
	}
	wantAccC := md.MakeCoords[float32](len(pos))
	wantPE := md.ComputeForcesFull(p, md.CoordsFromV3(pos), wantAccC)
	wantAcc := wantAccC.V3s()

	rt := newRT(t)
	acc, pe, bd, err := MDForces(rt, pos, p.Box, p.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(pe-wantPE)) / math.Abs(float64(wantPE)); rel > 2e-4 {
		t.Fatalf("PE = %v, want %v", pe, wantPE)
	}
	for i := range acc {
		if float64(acc[i].Sub(wantAcc[i]).Norm()) > 1e-4*(1+float64(wantAcc[i].Norm())) {
			t.Fatalf("acc[%d] = %+v, want %+v", i, acc[i], wantAcc[i])
		}
	}
	if bd.Total() <= 0 {
		t.Fatal("no modeled cost")
	}
}

func TestBrookAbstractionCostsMoreThanHandPort(t *testing.T) {
	// The Brook program pays extra passes (PE projection + multi-pass
	// reduction) the paper's hand-written port avoided — the abstraction
	// is convenient, not free.
	st, err := lattice.Generate(lattice.Config{
		N: 256, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]vec.V3[float32], len(st.Pos))
	for i := range pos {
		pos[i] = vec.FromV3f64[float32](st.Pos[i])
	}
	rt := newRT(t)
	_, _, bd, err := MDForces(rt, pos, float32(st.Box), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	// The hand port's per-step cost: one dispatch + two transfers +
	// compute. Reconstruct it from the same device config.
	cfg := gpu.DefaultConfig()
	handDispatches := 1
	brookCost := bd.Component("compute+dispatch")
	if brookCost <= float64(handDispatches)*cfg.DispatchSec*2 {
		t.Fatalf("Brook dispatch cost %v should exceed the hand port's single dispatch", brookCost)
	}
}

func TestMDForcesEmpty(t *testing.T) {
	rt := newRT(t)
	acc, pe, bd, err := MDForces(rt, nil, 10, 2.5)
	if err != nil || acc != nil || pe != 0 || bd.Total() != 0 {
		t.Fatalf("empty MDForces: %v %v %v %v", acc, pe, bd, err)
	}
}
