package chaos

import (
	"context"
	"reflect"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func mustReplay(t *testing.T, sched Schedule) *Result {
	t.Helper()
	res, err := Replay(testCtx(t), t.TempDir(), sched)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return res
}

func TestReplayCleanSchedule(t *testing.T) {
	res := mustReplay(t, Schedule{Name: "clean", Seed: 1, Jobs: 2, Steps: 30})
	if res.Failed() {
		t.Fatalf("clean schedule violated invariants: %v", res.Violations)
	}
	if res.Acked != 2 {
		t.Fatalf("acked = %d, want 2", res.Acked)
	}
}

func TestReplayCrashResume(t *testing.T) {
	res := mustReplay(t, Schedule{Name: "crash", Seed: 2, Jobs: 1, Steps: 60, Crash: true})
	if res.Failed() {
		t.Fatalf("crash schedule violated invariants: %v", res.Violations)
	}
}

func TestReplayTornRenameSchedule(t *testing.T) {
	res := mustReplay(t, Schedule{
		Name: "torn", Seed: 3, Jobs: 1, Steps: 40, Crash: true,
		Faults: []FaultSpec{{Site: "fs-rename", Kind: "tornrename", AtCall: 3}},
	})
	if res.Failed() {
		t.Fatalf("torn-rename schedule violated invariants: %v", res.Violations)
	}
}

func TestReplayPersistentENOSPC(t *testing.T) {
	res := mustReplay(t, Schedule{
		Name: "enospc", Seed: 4, Jobs: 2, Steps: 30,
		Faults: []FaultSpec{
			{Site: "fs-write", Kind: "enospc", FromCall: 1},
			{Site: "fs-sync", Kind: "enospc", FromCall: 1},
		},
	})
	if res.Failed() {
		t.Fatalf("persistent-ENOSPC schedule violated invariants: %v", res.Violations)
	}
}

func TestReplayComputeFault(t *testing.T) {
	res := mustReplay(t, Schedule{
		Name: "nan", Seed: 5, Jobs: 1, Steps: 40,
		Faults: []FaultSpec{{Site: "forces", Kind: "nan", AtCall: 7}},
	})
	if res.Failed() {
		t.Fatalf("compute-fault schedule violated invariants: %v", res.Violations)
	}
}

// TestChaosSmoke is the verify-gate campaign: a fixed-seed mixed
// sample small enough to pass in seconds, broad enough to cross every
// subsystem (fs faults, crashes, floods, compute faults).
func TestChaosSmoke(t *testing.T) {
	c, err := Generate("smoke", 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunCampaign(testCtx(t), c, t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		for _, f := range rep.Failures {
			t.Errorf("schedule %s: %v\n  repro: %s", f.Result.Schedule.Name, f.Result.Violations, f.Repro)
		}
		t.Fatalf("smoke campaign: %d/%d schedules failed", len(rep.Failures), rep.Ran)
	}
	if rep.Ran != 12 || rep.Passed != 12 {
		t.Fatalf("smoke campaign ran %d passed %d, want 12/12", rep.Ran, rep.Passed)
	}
}

// TestCampaignDefault is the acceptance-floor campaign: >= 200
// fixed-seed schedules spanning fs faults, crashes, cancellations and
// floods, all invariants green. Skipped under -short (the race-
// enabled verify tier runs the smoke campaign instead).
func TestCampaignDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("default campaign is the long acceptance run; smoke covers -short")
	}
	c, err := Generate("default", 1234, 200)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunCampaign(testCtx(t), c, t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		for _, f := range rep.Failures {
			t.Errorf("schedule %s: %v\n  repro: %s", f.Result.Schedule.Name, f.Result.Violations, f.Repro)
		}
		t.Fatalf("default campaign: %d/%d schedules failed", len(rep.Failures), rep.Ran)
	}
	if rep.Ran != 200 {
		t.Fatalf("ran %d schedules, want 200", rep.Ran)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Schedule{
		Name: "rt", Seed: 99, Jobs: 2, Steps: 50, Crash: true, Heal: true, Flood: 3,
		Faults: []FaultSpec{
			{Site: "fs-write", Kind: "shortwrite", AtCall: 4},
			{Site: "forces", Kind: "nan", AtCall: 11},
			{Site: "fs-rename", Kind: "tornrename", FromCall: 2},
		},
	}
	got, err := ParseSchedule(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, s)
	}
	if _, err := ParseSchedule(`{"faults":[{"site":"fs-write","kind":"bogus"}]}`); err == nil {
		t.Fatal("unknown kind must be rejected at parse time")
	}
}

func TestNormalizedForcesHealForPersistentFSFaultsUnderCrash(t *testing.T) {
	s := Schedule{
		Jobs: 1, Steps: 40, Crash: true,
		Faults: []FaultSpec{{Site: "fs-write", Kind: "error", FromCall: 1}},
	}.normalized()
	if !s.Heal {
		t.Fatal("crash + persistent fs fault must force Heal")
	}
	s2 := Schedule{
		Jobs: 1, Steps: 40, Crash: true,
		Faults: []FaultSpec{{Site: "fs-write", Kind: "error", AtCall: 3}},
	}.normalized()
	if s2.Heal {
		t.Fatal("one-shot faults must not force Heal")
	}
}

// knownBad is the intentionally-seeded failure the shrink pin uses: a
// deterministic predicate that "fails" iff the schedule still arms
// both a sync fault and a rename fault AND crashes — so the minimal
// reproducer must be exactly those two faults plus the crash, with the
// flood, the extra job, the extra faults, and the long trajectory all
// shrunk away.
func knownBad() Schedule {
	return Schedule{
		Name: "knownbad", Seed: 7, Jobs: 2, Steps: 160, Crash: true, Flood: 4,
		Faults: []FaultSpec{
			{Site: "fs-read", Kind: "error", AtCall: 9},
			{Site: "fs-sync", Kind: "enospc", AtCall: 2},
			{Site: "forces", Kind: "inf", AtCall: 5},
			{Site: "fs-rename", Kind: "tornrename", AtCall: 1},
		},
	}
}

func knownBadFails(s Schedule) bool {
	var sync, rename bool
	for _, f := range s.Faults {
		if f.Site == "fs-sync" {
			sync = true
		}
		if f.Site == "fs-rename" {
			rename = true
		}
	}
	return sync && rename && s.Crash
}

// TestShrinkDeterministicMinimalReproducer pins the acceptance
// criterion: the known-bad schedule shrinks to the same minimal
// reproducer on repeated runs, and that reproducer is actually
// minimal (removing anything else stops it failing).
func TestShrinkDeterministicMinimalReproducer(t *testing.T) {
	a := Shrink(knownBad(), knownBadFails)
	b := Shrink(knownBad(), knownBadFails)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shrink not deterministic:\n a %+v\n b %+v", a, b)
	}
	want := Schedule{
		Name: "knownbad", Seed: 7, Jobs: 1, Steps: 20, Crash: true,
		Faults: []FaultSpec{
			{Site: "fs-sync", Kind: "enospc", AtCall: 2},
			{Site: "fs-rename", Kind: "tornrename", AtCall: 1},
		},
	}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("minimal reproducer:\n got %+v\nwant %+v", a, want)
	}
	if !knownBadFails(a) {
		t.Fatal("minimal reproducer no longer fails")
	}
	// Minimality: dropping either remaining fault or the crash stops
	// the failure.
	for i := range a.Faults {
		cand := a
		cand.Faults = append(append([]FaultSpec(nil), a.Faults[:i]...), a.Faults[i+1:]...)
		if knownBadFails(cand) {
			t.Fatalf("dropping fault %d still fails: not minimal", i)
		}
	}
	cand := a
	cand.Crash = false
	if knownBadFails(cand) {
		t.Fatal("dropping crash still fails: not minimal")
	}
}

// TestShrinkOnRealReplay closes the loop on a real failure: an
// artificial invariant checker (a predicate that calls Replay and
// fails when any submission was refused) shrinks to a single
// persistent-fault schedule, the same way twice.
func TestShrinkOnRealReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("real-replay shrink does several full replays")
	}
	// Persistent create-failure refuses admissions — by design (503).
	// Treating "refused > 0" as the failure predicate gives Shrink a
	// real, replay-backed signal to minimize against.
	bad := Schedule{
		Name: "refuse", Seed: 11, Jobs: 2, Steps: 40, Flood: 2,
		Faults: []FaultSpec{
			{Site: "fs-read", Kind: "error", AtCall: 50},
			{Site: "fs-create", Kind: "enospc", FromCall: 1},
		},
	}
	ctx := testCtx(t)
	pred := func(s Schedule) bool {
		res, err := Replay(ctx, t.TempDir(), s)
		return err == nil && res.Refused > 0
	}
	if !pred(bad) {
		t.Fatal("seed schedule does not exhibit the signal")
	}
	a := Shrink(bad, pred)
	b := Shrink(bad, pred)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("real-replay shrink not deterministic:\n a %+v\n b %+v", a, b)
	}
	if len(a.Faults) != 1 || a.Faults[0].Site != "fs-create" || a.Flood != 0 || a.Jobs != 1 {
		t.Fatalf("minimal = %+v, want just the persistent create fault on one job", a)
	}
}
