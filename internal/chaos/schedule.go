package chaos

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/fsys"
)

// Schedule is one chaos scenario: a deterministic composition of
// filesystem faults, compute faults, tenant flood, and a simulated
// process crash, replayed against an in-process mdserve. A Schedule
// serializes to one line of JSON — that line IS the reproducer a
// failing campaign prints.
type Schedule struct {
	// Name labels the schedule in campaign output ("default-017").
	Name string `json:"name,omitempty"`
	// Seed seeds the fault registry's probabilistic-trigger stream and
	// nothing else; all sampled schedule content is fixed at
	// generation time so the schedule alone replays.
	Seed uint64 `json:"seed"`
	// Jobs is how many jobs the scenario submits sequentially (each
	// awaited to a terminal state before the next, which is what makes
	// fault call-numbers line up across replays). Min 1.
	Jobs int `json:"jobs"`
	// Steps is the trajectory length per job.
	Steps int `json:"steps"`
	// Faults is the armed fault list, filesystem and compute alike.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Crash interrupts the last job mid-run with a forced drain (the
	// in-process crash model: replicas cancelled within one MD step, no
	// terminal records) and restarts the server on the same data dir.
	Crash bool `json:"crash,omitempty"`
	// Heal disarms the filesystem faults at the crash boundary — the
	// disk comes back. Forced on when Crash is set and a persistent
	// (FromCall) filesystem fault is armed, because a disk that never
	// returns makes restart refusal the correct behavior, not a bug.
	Heal bool `json:"heal,omitempty"`
	// Flood fires this many extra burst admissions from a second
	// tenant before the main jobs — pressure on quotas and the queue.
	Flood int `json:"flood,omitempty"`
}

// FaultSpec is one armed fault in schedule vocabulary: site and kind
// by name, trigger by call number or probability, delays in
// milliseconds so the JSON stays arithmetic-free.
type FaultSpec struct {
	Site     string  `json:"site"`
	Kind     string  `json:"kind"`
	AtCall   int     `json:"at_call,omitempty"`
	FromCall int     `json:"from_call,omitempty"`
	Prob     float64 `json:"prob,omitempty"`
	DelayMS  int     `json:"delay_ms,omitempty"`
}

// fault compiles the spec into the faults package's vocabulary.
func (fs FaultSpec) fault() (faults.Fault, error) {
	k, err := faults.ParseKind(fs.Kind)
	if err != nil {
		return faults.Fault{}, err
	}
	return faults.Fault{
		Site: faults.Site(fs.Site),
		Kind: k,
		Trigger: faults.Trigger{
			AtCall:   fs.AtCall,
			FromCall: fs.FromCall,
			Prob:     fs.Prob,
		},
		Delay: time.Duration(fs.DelayMS) * time.Millisecond,
	}, nil
}

// IsFS reports whether the fault targets the filesystem seam.
func (fs FaultSpec) IsFS() bool {
	for _, s := range fsys.Sites() {
		if faults.Site(fs.Site) == s {
			return true
		}
	}
	return false
}

// normalized fills defaults and applies the forced-heal rule.
func (s Schedule) normalized() Schedule {
	if s.Jobs < 1 {
		s.Jobs = 1
	}
	if s.Steps < 1 {
		s.Steps = 40
	}
	if s.Crash && !s.Heal {
		for _, f := range s.Faults {
			if f.IsFS() && f.FromCall > 0 {
				s.Heal = true
				break
			}
		}
	}
	return s
}

// HasComputeFaults reports whether any armed fault targets the run
// stack rather than the filesystem. Compute faults may legitimately
// change a job's trajectory (escalation ladder) or fail it (budget
// exhaustion), so the oracle-energy and never-failed invariants only
// apply without them.
func (s Schedule) HasComputeFaults() bool {
	for _, f := range s.Faults {
		if !f.IsFS() {
			return true
		}
	}
	return false
}

// registries compiles the schedule into two views of one armed fault
// set: the filesystem faults and the compute faults, each in its own
// Registry (they fire from different goroutines at unrelated call
// sites; separate counters keep both streams deterministic).
func (s Schedule) registries() (fs, compute *faults.Registry, err error) {
	fs = faults.NewRegistry(s.Seed)
	compute = faults.NewRegistry(s.Seed)
	for _, spec := range s.Faults {
		f, ferr := spec.fault()
		if ferr != nil {
			return nil, nil, fmt.Errorf("chaos: schedule %s: %w", s.Name, ferr)
		}
		if spec.IsFS() {
			fs.Arm(f)
		} else {
			compute.Arm(f)
		}
	}
	return fs, compute, nil
}

// JSON renders the schedule as its one-line reproducer form.
func (s Schedule) JSON() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Schedule is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("chaos: marshaling schedule: %v", err))
	}
	return string(b)
}

// ParseSchedule reads a one-line JSON schedule (the repro form).
func ParseSchedule(line string) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal([]byte(line), &s); err != nil {
		return Schedule{}, fmt.Errorf("chaos: parsing schedule: %w", err)
	}
	for _, f := range s.Faults {
		if _, err := f.fault(); err != nil {
			return Schedule{}, err
		}
	}
	return s, nil
}

// ReproCommand is the one-liner a failing campaign prints: feed it
// back to mdchaos to replay exactly this schedule.
func (s Schedule) ReproCommand() string {
	return fmt.Sprintf("mdchaos -replay '%s'", s.JSON())
}
