// Package chaos is the deterministic chaos-campaign runner for the
// serving stack. The paper's regime — long trajectories on commodity
// accelerators — is exactly where partial failure dominates: a
// multi-hour run loses everything not checkpointed, and the
// store/guard/fleet/serve stack has dozens of interleaved failure
// points a single hand-written crash test cannot cover. This package
// composes fault schedules across the whole stack (filesystem faults
// through the fsys seam, force corruption through the run injector,
// simulated process crashes, tenant floods), replays each schedule
// against an in-process mdserve, and checks end-to-end invariants
// after every run:
//
//	I1  every acknowledged job reaches a terminal state (or resumes
//	    across the crash and then reaches one);
//	I2  a job that finished cleanly has the same final energy (1e-8)
//	    as an uninterrupted oracle run of the same normalized spec —
//	    resume is physically faithful, not merely "it completed";
//	I3  idempotency keys never double-run, including across a crash;
//	I4  a replay leaks no goroutines;
//	I5  the store directory is never left unparseable: a clean-disk
//	    Scan succeeds and reports no job that was never acknowledged;
//	I6  filesystem faults alone never fail a job — storage trouble
//	    degrades durability, it must not corrupt physics.
//
// A failing schedule shrinks automatically (see Shrink) to a minimal
// reproducer, printed as a one-line mdchaos command.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/fsys"
	"repro/internal/guard"
	"repro/internal/serve"
)

// Result is the outcome of replaying one schedule.
type Result struct {
	Schedule Schedule
	// Violations lists every invariant breach, empty for a clean run.
	Violations []string
	// Acked is how many submissions were acknowledged (main + flood).
	Acked int
	// Refused is how many submissions were refused (429/503) — legal
	// under fault pressure, counted for campaign summaries.
	Refused int
	// FSSnapshot and ComputeSnapshot export the exact armed schedule
	// and fired events of the failing run, for diagnosis.
	FSSnapshot      faults.RegistrySnapshot
	ComputeSnapshot faults.RegistrySnapshot
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

func (r *Result) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// swapFS is the healable disk: a fault injector whose registry can be
// withdrawn at the crash boundary, modeling a disk that comes back.
type swapFS struct {
	mu sync.Mutex
	in faults.Injector
}

func (d *swapFS) Fire(site faults.Site) *faults.Fault {
	d.mu.Lock()
	in := d.in
	d.mu.Unlock()
	return faults.Fire(in, site)
}

func (d *swapFS) heal() {
	d.mu.Lock()
	d.in = nil
	d.mu.Unlock()
}

// baseSpec is the workload every chaos job runs: the suite's standard
// tiny FCC box with a rescale thermostat (deterministic, not
// drift-checked) and frequent checkpoints so crash points land
// between restore points.
func baseSpec(steps int) serve.Spec {
	return serve.Spec{
		Atoms:           108,
		Steps:           steps,
		Thermostat:      "rescale",
		CheckpointEvery: 10,
		KeepCheckpoints: 3,
	}
}

// oracleCache memoizes uninterrupted final energies per step count —
// every chaos job shares the base spec, so one guard run per distinct
// Steps serves a whole campaign.
var oracleCache sync.Map // int (steps) -> float64

// oracleEnergy runs the base spec start-to-finish on a healthy stack.
func oracleEnergy(steps int, scratch string) (float64, error) {
	if e, ok := oracleCache.Load(steps); ok {
		return e.(float64), nil
	}
	gcfg, err := baseSpec(steps).Normalized().GuardConfig(scratch)
	if err != nil {
		return 0, err
	}
	gcfg.Run.Workers = 1
	sup, err := guard.New(gcfg)
	if err != nil {
		return 0, err
	}
	defer sup.Close()
	sum, _, err := sup.Run(steps)
	if err != nil {
		return 0, err
	}
	oracleCache.Store(steps, sum.FinalEnergy)
	return sum.FinalEnergy, nil
}

// replayEnv is the per-replay server plumbing.
type replayEnv struct {
	dir     string
	disk    *swapFS
	fs      fsys.FS
	compute *faults.Registry
	handler http.Handler
	srv     *serve.Server
}

// serverConfig builds the deterministic mdserve configuration every
// replay uses: single-inflight fleet (sequential job execution), a
// frozen generous tenant clock (quota decisions depend only on the
// schedule, never on wall time), zero-sleep backoff, and probe-every-
// submission degraded recovery.
func (env *replayEnv) serverConfig() serve.Config {
	frozen := time.Unix(1_000_000, 0)
	return serve.Config{
		DataDir: env.dir,
		Fleet: fleet.Config{
			MaxInflight:  1,
			QueueDepth:   64,
			WorkerBudget: 1,
			JitterSeed:   1,
			Sleep:        func(time.Duration) {},
		},
		Tenancy: serve.TenantPolicy{
			Rate: 1, Burst: 1024, MaxActive: 512,
			Now: func() time.Time { return frozen },
		},
		FS:           env.fs,
		Faults:       env.compute,
		DegradeAfter: 3,
		ProbeEvery:   -1,
		Logf:         func(string, ...any) {},
	}
}

// start builds (or rebuilds, after a crash) the server. On restart
// failure with a still-faulty disk it heals and retries once: a disk
// that never returns makes refusal correct, and the campaign wants to
// check the recovery path, not the refusal path.
func (env *replayEnv) start(res *Result) error {
	srv, err := serve.NewServer(env.serverConfig())
	if err != nil {
		env.disk.heal()
		srv, err = serve.NewServer(env.serverConfig())
		if err != nil {
			res.violate("I5: restart failed on a healthy disk: %v", err)
			return err
		}
	}
	env.srv = srv
	env.handler = srv.Handler()
	return nil
}

// Replay runs one schedule against a fresh in-process mdserve and
// checks every invariant. The returned error is infrastructural (the
// replay itself could not run); invariant breaches land in
// Result.Violations.
func Replay(ctx context.Context, dir string, sched Schedule) (*Result, error) {
	sched = sched.normalized()
	res := &Result{Schedule: sched}
	fsReg, computeReg, err := sched.registries()
	if err != nil {
		return nil, err
	}
	baseGoroutines := runtime.NumGoroutine()

	env := &replayEnv{
		dir:     dir,
		disk:    &swapFS{in: fsReg},
		compute: computeReg,
	}
	env.fs = fsys.Faulty(fsys.OS, env.disk)
	if err := env.start(res); err != nil {
		return res, nil
	}

	type ackedJob struct {
		id, key string
		done    bool // reached terminal before the crash boundary
	}
	var acked []ackedJob

	post := func(tenant, key string, sp serve.Spec) (id string, code int, dedup bool) {
		body := strings.NewReader(fmt.Sprintf(
			`{"atoms":%d,"steps":%d,"thermostat":"rescale","checkpoint_every":%d,"keep_checkpoints":%d}`,
			sp.Atoms, sp.Steps, sp.CheckpointEvery, sp.KeepCheckpoints))
		req := httptest.NewRequest("POST", "/v1/jobs", body)
		req.Header.Set("X-Tenant", tenant)
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		rw := httptest.NewRecorder()
		env.handler.ServeHTTP(rw, req)
		var sr struct {
			ID           string `json:"id"`
			Deduplicated bool   `json:"deduplicated"`
		}
		decodeBody(rw, &sr)
		return sr.ID, rw.Code, sr.Deduplicated
	}
	status := func(id string) (string, bool) {
		req := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
		rw := httptest.NewRecorder()
		env.handler.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			return "", false
		}
		var st struct {
			Status string `json:"status"`
		}
		decodeBody(rw, &st)
		return st.Status, true
	}
	awaitTerminal := func(id string) (string, error) {
		deadline := time.Now().Add(60 * time.Second)
		for {
			if st, ok := status(id); ok && (st == serve.StatusDone || st == serve.StatusFailed) {
				return st, nil
			}
			if time.Now().After(deadline) {
				return "", fmt.Errorf("job %s never reached a terminal state", id)
			}
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
	}

	spec := baseSpec(sched.Steps)

	// Phase 1: tenant flood — a burst of unkeyed admissions from a
	// second tenant. Refusals (quota, queue, storage) are legal; every
	// acknowledgment is binding.
	for i := 0; i < sched.Flood; i++ {
		id, code, _ := post("flood", "", baseSpec(20))
		switch code {
		case http.StatusAccepted:
			acked = append(acked, ackedJob{id: id})
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			res.Refused++
		default:
			res.violate("I1: flood submission %d: unexpected status %d", i, code)
		}
	}

	// Phase 2: main jobs, sequential. Each is submitted with an
	// idempotency key, immediately resubmitted (must dedup), and —
	// except a crash-target last job — awaited to terminal before the
	// next, which is what pins fault call numbers across replays.
	crashTarget := ""
	for k := 0; k < sched.Jobs; k++ {
		key := fmt.Sprintf("chaos-%d", k)
		id, code, dedup := post("chaos", key, spec)
		switch code {
		case http.StatusAccepted:
			if dedup {
				res.violate("I3: fresh key %s reported deduplicated", key)
			}
			acked = append(acked, ackedJob{id: id, key: key})
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			res.Refused++
			continue
		default:
			res.violate("I1: job %d: unexpected status %d", k, code)
			continue
		}
		if id2, code2, dedup2 := post("chaos", key, spec); code2 != http.StatusOK || !dedup2 || id2 != id {
			res.violate("I3: resubmit of key %s: code %d, dedup %v, id %s (want 200, true, %s)",
				key, code2, dedup2, id2, id)
		}
		last := k == sched.Jobs-1
		if sched.Crash && last {
			crashTarget = id
			continue // interrupted below, not awaited
		}
		st, err := awaitTerminal(id)
		if err != nil {
			res.violate("I1: %v", err)
			continue
		}
		acked[len(acked)-1].done = true
		_ = st
	}

	// Phase 3: simulated crash — forced drain cancels the in-flight
	// replica within one MD step and writes no terminal record; then
	// the server restarts on the same directory and must resume.
	if sched.Crash {
		if crashTarget != "" {
			waitForCrashPoint(ctx, env, crashTarget)
		}
		expired, cancel := context.WithDeadline(ctx, time.Unix(0, 0))
		_ = env.srv.Drain(expired) // error expected: this IS the crash
		cancel()
		if sched.Heal {
			env.disk.heal()
		}
		if err := env.start(res); err != nil {
			return res, nil
		}
		// Idempotency across the crash: every key admitted before the
		// crash must dedup to its original ID in the restarted server.
		for _, a := range acked {
			if a.key == "" {
				continue
			}
			id2, code2, dedup2 := post("chaos", a.key, spec)
			if code2 != http.StatusOK || !dedup2 || id2 != a.id {
				res.violate("I3: key %s after crash: code %d, dedup %v, id %s (want 200, true, %s)",
					a.key, code2, dedup2, id2, a.id)
			}
		}
	}

	// Phase 4: graceful drain — every acknowledged job must reach a
	// terminal state (resumed jobs finish their remaining steps first).
	for _, a := range acked {
		if a.done {
			continue
		}
		if _, err := awaitTerminal(a.id); err != nil {
			res.violate("I1: %v", err)
		}
	}
	drainCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	if err := env.srv.Drain(drainCtx); err != nil {
		res.violate("I1: final drain: %v", err)
	}
	cancel()

	// Invariant sweep over the quiesced server and the raw store.
	res.Acked = len(acked)
	oracle := math.NaN()
	if !sched.HasComputeFaults() {
		if e, err := oracleEnergy(sched.Steps, dir+"-oracle"); err != nil {
			return nil, fmt.Errorf("chaos: oracle run: %w", err)
		} else {
			oracle = e
		}
	}
	for _, a := range acked {
		st, ok := status(a.id)
		if !ok || (st != serve.StatusDone && st != serve.StatusFailed) {
			res.violate("I1: job %s final status %q", a.id, st)
			continue
		}
		if st == serve.StatusFailed && !sched.HasComputeFaults() {
			res.violate("I6: job %s failed under filesystem faults alone", a.id)
		}
		if st == serve.StatusDone && !math.IsNaN(oracle) && a.key != "" {
			if rec := terminalOf(env, a.id); rec != nil && rec.Summary != nil {
				if diff := math.Abs(rec.Summary.FinalEnergy - oracle); diff > 1e-8*math.Max(1, math.Abs(oracle)) {
					res.violate("I2: job %s final energy %.12g differs from oracle %.12g by %.3g",
						a.id, rec.Summary.FinalEnergy, oracle, diff)
				}
			}
		}
	}

	// I5: the store survives everything the schedule did — a clean
	// disk scan parses, and reports no job nobody was promised.
	cleanStore, err := serve.NewStore(dir)
	if err != nil {
		res.violate("I5: reopening store: %v", err)
	} else if scanned, _, serr := cleanStore.Scan(); serr != nil {
		res.violate("I5: clean-disk Scan failed: %v", serr)
	} else {
		known := make(map[string]bool, len(acked))
		for _, a := range acked {
			known[a.id] = true
		}
		for _, sj := range scanned {
			if !known[sj.Record.ID] {
				res.violate("I5: store holds job %s that was never acknowledged", sj.Record.ID)
			}
		}
	}

	// I4: no goroutine leaks, with a settle loop for runtime noise.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseGoroutines+2 {
			break
		}
		select {
		case <-ctx.Done():
			return res, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+2 {
		res.violate("I4: goroutine leak: %d before, %d after", baseGoroutines, n)
	}

	res.FSSnapshot = fsReg.Snapshot()
	res.ComputeSnapshot = computeReg.Snapshot()
	return res, nil
}

// waitForCrashPoint blocks until the crash target is mid-run with a
// checkpoint on disk (the interesting crash point), already terminal,
// or the wait budget expires (legal under write faults that suppress
// every checkpoint — the crash then exercises the start-over path).
func waitForCrashPoint(ctx context.Context, env *replayEnv, id string) {
	deadline := time.Now().Add(30 * time.Second)
	ckptDir := env.srv.CheckpointDirOf(id)
	for time.Now().Before(deadline) {
		if ents, err := fsys.OS.ReadDir(ckptDir); err == nil {
			n := 0
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".mdcp") {
					n++
				}
			}
			// Two checkpoints ≈ the baseline plus one mid-run commit:
			// the crash lands strictly inside the trajectory.
			if n >= 2 {
				return
			}
		}
		req := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
		rw := httptest.NewRecorder()
		env.handler.ServeHTTP(rw, req)
		var st struct {
			Status string `json:"status"`
		}
		decodeBody(rw, &st)
		if st.Status == serve.StatusDone || st.Status == serve.StatusFailed {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// terminalOf fetches a job's terminal record through the API.
func terminalOf(env *replayEnv, id string) *serve.TerminalRecord {
	req := httptest.NewRequest("GET", "/v1/jobs/"+id+"/report", nil)
	rw := httptest.NewRecorder()
	env.handler.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		return nil
	}
	var rec serve.TerminalRecord
	decodeBody(rw, &rec)
	return &rec
}

// decodeBody parses a recorded JSON response, tolerating error
// payloads that do not match v (the caller checks the status code).
func decodeBody(rw *httptest.ResponseRecorder, v any) {
	_ = json.Unmarshal(rw.Body.Bytes(), v)
}
