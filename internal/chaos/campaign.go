package chaos

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faults"
	"repro/internal/fsys"
	"repro/internal/xrand"
)

// Campaign is a named, fully sampled set of schedules. Sampling
// happens once, at generation, from the campaign seed — each schedule
// then carries everything its replay needs, so a failing schedule
// reproduces without the campaign around it.
type Campaign struct {
	Name      string
	Schedules []Schedule
}

// Campaigns lists the named generators Generate accepts.
func Campaigns() []string { return []string{"default", "fs", "crash", "flood", "smoke"} }

// Generate samples n schedules for the named campaign from seed.
// n <= 0 picks the campaign's standard size (200 for default — the
// acceptance floor — and 12 for smoke, the verify-gate budget).
func Generate(name string, seed uint64, n int) (Campaign, error) {
	if n <= 0 {
		switch name {
		case "smoke":
			n = 12
		default:
			n = 200
		}
	}
	rng := xrand.New(seed)
	c := Campaign{Name: name}
	for i := 0; i < n; i++ {
		var s Schedule
		switch name {
		case "default":
			s = sampleMixed(rng, 30+rng.Intn(31))
		case "smoke":
			s = sampleMixed(rng, 30)
		case "fs":
			s = sampleFS(rng)
		case "crash":
			s = sampleCrash(rng)
		case "flood":
			s = sampleFlood(rng)
		default:
			return Campaign{}, fmt.Errorf("chaos: unknown campaign %q (want %v)", name, Campaigns())
		}
		s.Name = fmt.Sprintf("%s-%03d", name, i)
		c.Schedules = append(c.Schedules, s)
	}
	return c, nil
}

// fsFaultCatalog is what a sampled filesystem fault may do, per site:
// the kinds that are physically meaningful there.
var fsFaultCatalog = []struct {
	site  faults.Site
	kinds []faults.Kind
}{
	{fsys.SiteMkdir, []faults.Kind{faults.Error}},
	{fsys.SiteCreate, []faults.Kind{faults.Error, faults.ENOSPC}},
	{fsys.SiteWrite, []faults.Kind{faults.Error, faults.ShortWrite, faults.ENOSPC}},
	{fsys.SiteSync, []faults.Kind{faults.Error, faults.ENOSPC}},
	{fsys.SiteRename, []faults.Kind{faults.Error, faults.TornRename, faults.ENOSPC}},
	{fsys.SiteRemove, []faults.Kind{faults.Error}},
	{fsys.SiteReadDir, []faults.Kind{faults.Error}},
	{fsys.SiteOpen, []faults.Kind{faults.Error}},
	{fsys.SiteRead, []faults.Kind{faults.Error}},
}

// sampleFSFault draws one filesystem fault: mostly one-shot AtCall
// triggers landing in the busy early window, sometimes a persistent
// FromCall fault (the disk that stays broken).
func sampleFSFault(rng *xrand.Source) FaultSpec {
	e := fsFaultCatalog[rng.Intn(len(fsFaultCatalog))]
	k := e.kinds[rng.Intn(len(e.kinds))]
	f := FaultSpec{Site: string(e.site), Kind: k.String()}
	if rng.Float64() < 0.8 {
		f.AtCall = 1 + rng.Intn(40)
	} else {
		f.FromCall = 1 + rng.Intn(10)
	}
	return f
}

// sampleComputeFault draws one force-corruption fault: a NaN or Inf
// poisoned into a force evaluation, which the guard watchdog must
// catch and roll back.
func sampleComputeFault(rng *xrand.Source, steps int) FaultSpec {
	kind := faults.NaN
	if rng.Float64() < 0.5 {
		kind = faults.Inf
	}
	return FaultSpec{
		Site:   string(faults.SiteForces),
		Kind:   kind.String(),
		AtCall: 1 + rng.Intn(steps),
	}
}

// sampleMixed is the default campaign's generator: 1–3 fs faults,
// an occasional compute fault, an occasional crash, a small flood.
func sampleMixed(rng *xrand.Source, steps int) Schedule {
	s := Schedule{
		Seed:  rng.Uint64(),
		Jobs:  1 + rng.Intn(2),
		Steps: steps,
		Crash: rng.Float64() < 0.35,
		Flood: rng.Intn(3),
	}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		s.Faults = append(s.Faults, sampleFSFault(rng))
	}
	if rng.Float64() < 0.3 {
		s.Faults = append(s.Faults, sampleComputeFault(rng, steps))
	}
	return s.normalized()
}

// sampleFS stresses the filesystem seam alone: more faults, no crash,
// no flood — pure storage adversity, where I6 (never fail a job) and
// I2 (oracle energy) must hold unconditionally.
func sampleFS(rng *xrand.Source) Schedule {
	s := Schedule{Seed: rng.Uint64(), Jobs: 1 + rng.Intn(2), Steps: 30 + rng.Intn(31)}
	for i, n := 0, 2+rng.Intn(3); i < n; i++ {
		s.Faults = append(s.Faults, sampleFSFault(rng))
	}
	return s.normalized()
}

// sampleCrash always crashes mid-run, usually with storage trouble
// around the crash point — the resume path under fire.
func sampleCrash(rng *xrand.Source) Schedule {
	s := Schedule{Seed: rng.Uint64(), Jobs: 1, Steps: 40 + rng.Intn(21), Crash: true}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Faults = append(s.Faults, sampleFSFault(rng))
	}
	return s.normalized()
}

// sampleFlood pressures admission: bursts of a second tenant, few or
// no faults — quota accounting and queue shedding must stay exact.
func sampleFlood(rng *xrand.Source) Schedule {
	s := Schedule{Seed: rng.Uint64(), Jobs: 1 + rng.Intn(2), Steps: 30, Flood: 2 + rng.Intn(4)}
	if rng.Float64() < 0.3 {
		s.Faults = append(s.Faults, sampleFSFault(rng))
	}
	return s.normalized()
}

// Failure is one invariant-violating schedule, shrunk.
type Failure struct {
	Result  *Result  // the original failing replay
	Minimal Schedule // the shrunk reproducer
	Repro   string   // one-line mdchaos command replaying Minimal
}

// Report summarizes a campaign run.
type Report struct {
	Campaign  string
	Ran       int
	Passed    int
	Refused   int // total refused submissions across schedules (legal)
	Failures  []Failure
	ShrinkRan int // replays spent shrinking failures
}

// RunCampaign replays every schedule sequentially (determinism over
// wall-clock: the fleet below is single-core anyway) under scratch,
// shrinking every failure to its minimal reproducer. The returned
// error is infrastructural; invariant breaches are in the Report.
func RunCampaign(ctx context.Context, c Campaign, scratch string, logf func(string, ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Campaign: c.Name}
	replays := 0
	freshDir := func() (string, error) {
		replays++
		dir := filepath.Join(scratch, fmt.Sprintf("r%04d", replays))
		return dir, os.MkdirAll(dir, 0o755)
	}
	for _, sched := range c.Schedules {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		dir, err := freshDir()
		if err != nil {
			return rep, err
		}
		res, err := Replay(ctx, dir, sched)
		if err != nil {
			return rep, fmt.Errorf("chaos: schedule %s: %w", sched.Name, err)
		}
		rep.Ran++
		rep.Refused += res.Refused
		if !res.Failed() {
			rep.Passed++
			_ = os.RemoveAll(dir) // clean run: reclaim scratch as we go
			continue
		}
		logf("chaos: schedule %s FAILED: %v", sched.Name, res.Violations)
		min := Shrink(sched, func(cand Schedule) bool {
			if ctx.Err() != nil {
				return false // stop shrinking, keep what we have
			}
			d, derr := freshDir()
			if derr != nil {
				return false
			}
			defer os.RemoveAll(d)
			rep.ShrinkRan++
			r, rerr := Replay(ctx, d, cand)
			return rerr == nil && r.Failed()
		})
		rep.Failures = append(rep.Failures, Failure{
			Result:  res,
			Minimal: min,
			Repro:   min.ReproCommand(),
		})
		logf("chaos: minimal reproducer: %s", min.ReproCommand())
	}
	return rep, nil
}
