package chaos

// Shrink reduces a failing schedule to a minimal reproducer: a fixed
// sequence of reduction passes (drop each fault, zero the flood, drop
// the crash, drop extra jobs, halve the trajectory), each kept only if
// the reduced schedule still fails, repeated to a fixpoint. Because
// the pass order is fixed and the predicate is deterministic, the same
// failing schedule always shrinks to the same minimal schedule — the
// property that makes a campaign's repro line trustworthy.
//
// fails must return true when the candidate schedule still reproduces
// the failure; it is called O(faults + log steps) times per round.
func Shrink(sched Schedule, fails func(Schedule) bool) Schedule {
	cur := sched.normalized()
	for changed := true; changed; {
		changed = false

		// Pass 1: drop armed faults one at a time, first to last.
		for i := 0; i < len(cur.Faults); {
			cand := cur
			cand.Faults = append(append([]FaultSpec(nil), cur.Faults[:i]...), cur.Faults[i+1:]...)
			if fails(cand.normalized()) {
				cur = cand.normalized()
				changed = true
			} else {
				i++
			}
		}

		// Pass 2: no flood.
		if cur.Flood > 0 {
			cand := cur
			cand.Flood = 0
			if fails(cand) {
				cur = cand
				changed = true
			}
		}

		// Pass 3: no crash (heal is meaningless without one).
		if cur.Crash {
			cand := cur
			cand.Crash, cand.Heal = false, false
			if fails(cand) {
				cur = cand
				changed = true
			}
		}

		// Pass 4: a single job.
		if cur.Jobs > 1 {
			cand := cur
			cand.Jobs = 1
			if fails(cand) {
				cur = cand
				changed = true
			}
		}

		// Pass 5: halve the trajectory, but keep at least two
		// checkpoint intervals so crash points still exist.
		if cur.Steps > 20 {
			cand := cur
			cand.Steps = cur.Steps / 2
			if cand.Steps < 20 {
				cand.Steps = 20
			}
			if fails(cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}
