package fsys

import (
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/faults"
)

// The fault sites of the filesystem seam: one per operation class, so
// a schedule can say "the 3rd fsync fails" or "every rename from call
// 5 is torn" independently of how many of the other operations the
// store happens to issue.
const (
	SiteMkdir   faults.Site = "fs-mkdir"
	SiteCreate  faults.Site = "fs-create"
	SiteWrite   faults.Site = "fs-write"
	SiteSync    faults.Site = "fs-sync"
	SiteRename  faults.Site = "fs-rename"
	SiteRemove  faults.Site = "fs-remove" // Remove and RemoveAll share one counter
	SiteReadDir faults.Site = "fs-readdir"
	SiteOpen    faults.Site = "fs-open"
	SiteRead    faults.Site = "fs-read" // Read and ReadFile share one counter
)

// Sites lists every filesystem fault site — the catalog a schedule
// generator samples from.
func Sites() []faults.Site {
	return []faults.Site{
		SiteMkdir, SiteCreate, SiteWrite, SiteSync, SiteRename,
		SiteRemove, SiteReadDir, SiteOpen, SiteRead,
	}
}

// Faulty wraps inner so that every operation first consults the
// injector at its site. Kind semantics per operation:
//
//   - Error fails the operation with faults.ErrInjected;
//   - ENOSPC fails it with an error wrapping syscall.ENOSPC — on
//     Write, half the buffer lands first, the torn-temp-file shape of
//     a disk filling up mid-checkpoint;
//   - ShortWrite (Write only) writes half the buffer and reports the
//     short count with a nil error — the lying writer that CRC
//     trailers and explicit length checks exist to catch;
//   - TornRename (Rename only) publishes the first half of the source
//     at the destination, removes the source, and fails the call —
//     power loss mid-publish; the caller knows it failed, but the
//     directory now holds garbage every later reader must reject;
//   - Delay sleeps Fault.Delay, then performs the operation;
//   - Panic panics (the store's callers run under recover boundaries);
//   - anything else passes through.
//
// A nil injector returns inner itself: the production path never pays
// for the wrapper it does not use.
func Faulty(inner FS, in faults.Injector) FS {
	if in == nil {
		return inner
	}
	return &faultFS{inner: OrOS(inner), in: in}
}

type faultFS struct {
	inner FS
	in    faults.Injector
}

// op consults the injector at site and executes the generic kinds;
// a non-nil error means the operation must fail without touching the
// inner filesystem.
func (e *faultFS) op(site faults.Site, name string) error {
	f := faults.Fire(e.in, site)
	if f == nil {
		return nil
	}
	switch f.Kind {
	case faults.Error:
		return fmt.Errorf("fsys: %s %s: %w", site, name, faults.ErrInjected)
	case faults.ENOSPC:
		return fmt.Errorf("fsys: %s %s: %w", site, name, syscall.ENOSPC)
	case faults.Delay:
		time.Sleep(f.Delay)
	case faults.Panic:
		panic(fmt.Sprintf("fsys: injected panic (site %s, %s)", site, name))
	}
	return nil
}

func (e *faultFS) MkdirAll(path string, perm iofs.FileMode) error {
	if err := e.op(SiteMkdir, path); err != nil {
		return err
	}
	return e.inner.MkdirAll(path, perm)
}

func (e *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := e.op(SiteCreate, dir); err != nil {
		return nil, err
	}
	f, err := e.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: e.in}, nil
}

func (e *faultFS) Open(name string) (File, error) {
	if err := e.op(SiteOpen, name); err != nil {
		return nil, err
	}
	f, err := e.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, in: e.in}, nil
}

func (e *faultFS) ReadFile(name string) ([]byte, error) {
	if err := e.op(SiteRead, name); err != nil {
		return nil, err
	}
	return e.inner.ReadFile(name)
}

func (e *faultFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	if err := e.op(SiteReadDir, name); err != nil {
		return nil, err
	}
	return e.inner.ReadDir(name)
}

func (e *faultFS) Rename(oldpath, newpath string) error {
	f := faults.Fire(e.in, SiteRename)
	if f != nil {
		switch f.Kind {
		case faults.Error:
			return fmt.Errorf("fsys: %s %s: %w", SiteRename, newpath, faults.ErrInjected)
		case faults.ENOSPC:
			return fmt.Errorf("fsys: %s %s: %w", SiteRename, newpath, syscall.ENOSPC)
		case faults.TornRename:
			e.tearRename(oldpath, newpath)
			return fmt.Errorf("fsys: %s %s: torn by injected crash: %w", SiteRename, newpath, faults.ErrInjected)
		case faults.Delay:
			time.Sleep(f.Delay)
		case faults.Panic:
			panic(fmt.Sprintf("fsys: injected panic (site %s, %s)", SiteRename, newpath))
		}
	}
	return e.inner.Rename(oldpath, newpath)
}

// tearRename leaves the aftermath of a crash mid-publish: the first
// half of the source lands at the destination, the source vanishes.
// Best-effort by construction — it is simulating a filesystem that has
// already stopped honoring contracts.
func (e *faultFS) tearRename(oldpath, newpath string) {
	b, err := e.inner.ReadFile(oldpath)
	if err == nil {
		if f, cerr := e.inner.CreateTemp(filepath.Dir(newpath), ".torn-*"); cerr == nil {
			tmp := f.Name()
			_, _ = f.Write(b[:len(b)/2]) //mdlint:ignore closeerr deliberately torn garbage; its write error is part of the simulated crash
			_ = f.Close()
			_ = e.inner.Rename(tmp, newpath)
		}
	}
	_ = e.inner.Remove(oldpath)
}

func (e *faultFS) Remove(name string) error {
	if err := e.op(SiteRemove, name); err != nil {
		return err
	}
	return e.inner.Remove(name)
}

func (e *faultFS) RemoveAll(path string) error {
	if err := e.op(SiteRemove, path); err != nil {
		return err
	}
	return e.inner.RemoveAll(path)
}

// faultFile injects write/sync/read faults on an open handle.
type faultFile struct {
	File
	in faults.Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	ff := faults.Fire(f.in, SiteWrite)
	if ff == nil {
		return f.File.Write(p)
	}
	switch ff.Kind {
	case faults.Error:
		return 0, fmt.Errorf("fsys: %s %s: %w", SiteWrite, f.Name(), faults.ErrInjected)
	case faults.ENOSPC:
		n, _ := f.File.Write(p[:len(p)/2])
		return n, fmt.Errorf("fsys: %s %s: %w", SiteWrite, f.Name(), syscall.ENOSPC)
	case faults.ShortWrite:
		return f.File.Write(p[:len(p)/2])
	case faults.Delay:
		time.Sleep(ff.Delay)
	case faults.Panic:
		panic(fmt.Sprintf("fsys: injected panic (site %s, %s)", SiteWrite, f.Name()))
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	ff := faults.Fire(f.in, SiteSync)
	if ff == nil {
		return f.File.Sync()
	}
	switch ff.Kind {
	case faults.Error:
		return fmt.Errorf("fsys: %s %s: %w", SiteSync, f.Name(), faults.ErrInjected)
	case faults.ENOSPC:
		return fmt.Errorf("fsys: %s %s: %w", SiteSync, f.Name(), syscall.ENOSPC)
	case faults.Delay:
		time.Sleep(ff.Delay)
	case faults.Panic:
		panic(fmt.Sprintf("fsys: injected panic (site %s, %s)", SiteSync, f.Name()))
	}
	return f.File.Sync()
}

func (f *faultFile) Read(p []byte) (int, error) {
	ff := faults.Fire(f.in, SiteRead)
	if ff == nil {
		return f.File.Read(p)
	}
	switch ff.Kind {
	case faults.Error:
		return 0, fmt.Errorf("fsys: %s %s: %w", SiteRead, f.Name(), faults.ErrInjected)
	case faults.Delay:
		time.Sleep(ff.Delay)
	case faults.Panic:
		panic(fmt.Sprintf("fsys: injected panic (site %s, %s)", SiteRead, f.Name()))
	}
	return f.File.Read(p)
}
