// Package fsys is the filesystem seam under the repository's durable
// stores. The guard checkpoint store and the serving layer's job store
// both promise the same thing — a reader only ever sees complete,
// validated files, whatever the disk did — but until this package that
// promise was tested only against the filesystems the test host
// happens to have. fsys narrows the store's view of the OS to exactly
// the operations the atomic write protocol uses (create a temp file,
// write, fsync, rename into place, remove, list, read back), so a
// deterministic fault-injecting implementation (Faulty, in errorfs.go)
// can stand in for a failing disk: ENOSPC mid-write, a lying short
// write, a rename torn by power loss, a directory that refuses to
// list. The production implementation (OS) is a thin veneer over the
// os package — one interface dispatch per syscall-bound operation,
// which BenchmarkChaosOverhead pins at <5% on the checkpoint hot path.
package fsys

import (
	"io"
	iofs "io/fs"
	"os"
)

// File is the narrowed handle the stores' write and read paths use:
// enough to stream a checkpoint in, fsync it, and read it back —
// nothing else, so a fault wrapper has few places to hide.
type File interface {
	io.Reader
	io.Writer
	// Name returns the path the file was opened or created with.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
}

// FS is the filesystem seam: the exact operation vocabulary of the
// tmp+fsync+rename protocol plus the recovery scan that reads it back.
type FS interface {
	// MkdirAll creates a directory path, like os.MkdirAll.
	MkdirAll(path string, perm iofs.FileMode) error
	// CreateTemp creates a new temp file in dir, like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens a file (or directory, for directory fsync) read-only.
	Open(name string) (File, error)
	// ReadFile reads a whole file, like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory, like os.ReadDir.
	ReadDir(name string) ([]iofs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath, like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes one file, like os.Remove.
	Remove(name string) error
	// RemoveAll deletes a tree, like os.RemoveAll.
	RemoveAll(path string) error
}

// OS is the production filesystem: direct delegation to the os
// package. Stores treat a nil FS as OS, so production call sites pay
// one nil check and one interface dispatch over the raw syscalls.
var OS FS = osFS{}

// OrOS returns fs, or OS when fs is nil — the defaulting idiom every
// store constructor uses.
func OrOS(fs FS) FS {
	if fs == nil {
		return OS
	}
	return fs
}

type osFS struct{}

func (osFS) MkdirAll(path string, perm iofs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)          { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]iofs.DirEntry, error)  { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error          { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                      { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                   { return os.RemoveAll(path) }
