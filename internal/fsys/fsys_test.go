package fsys

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faults"
)

// writeFile is the tmp+rename protocol in miniature, run through an FS.
func writeFile(fs FS, path string, data []byte) error {
	f, err := fs.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	n, err := f.Write(data)
	if err == nil && n != len(data) {
		err = errors.New("short write")
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.Rename(tmp, path)
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	if err := writeFile(OS, path, []byte("hello")); err != nil {
		t.Fatalf("writeFile: %v", err)
	}
	b, err := OS.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	sub := filepath.Join(dir, "x", "y")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if err := OS.RemoveAll(filepath.Join(dir, "x")); err != nil {
		t.Fatalf("RemoveAll: %v", err)
	}
}

func TestOrOS(t *testing.T) {
	if OrOS(nil) != OS {
		t.Fatal("OrOS(nil) != OS")
	}
	reg := faults.NewRegistry(1)
	f := Faulty(nil, reg)
	if OrOS(f) != f {
		t.Fatal("OrOS(non-nil) must be identity")
	}
}

func TestFaultyNilInjectorIsInner(t *testing.T) {
	if got := Faulty(OS, nil); got != OS {
		t.Fatalf("Faulty(OS, nil) = %v, want OS itself", got)
	}
}

func TestFaultyErrorAtCall(t *testing.T) {
	dir := t.TempDir()
	reg := faults.NewRegistry(7)
	reg.Arm(faults.Fault{Site: SiteSync, Kind: faults.Error, Trigger: faults.Trigger{AtCall: 2}})
	fs := Faulty(OS, reg)

	if err := writeFile(fs, filepath.Join(dir, "one"), []byte("first")); err != nil {
		t.Fatalf("call 1 should pass: %v", err)
	}
	err := writeFile(fs, filepath.Join(dir, "two"), []byte("second"))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("call 2 sync: err = %v, want ErrInjected", err)
	}
	// The protocol cleaned up: no temp file and no published "two".
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 || ents[0].Name() != "one" {
		t.Fatalf("dir after failed write = %v, want just one", ents)
	}
}

func TestFaultyENOSPCWrite(t *testing.T) {
	dir := t.TempDir()
	reg := faults.NewRegistry(7)
	reg.Arm(faults.Fault{Site: SiteWrite, Kind: faults.ENOSPC, Trigger: faults.Trigger{AtCall: 1}})
	fs := Faulty(OS, reg)

	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Write err = %v, want ENOSPC", err)
	}
	if n != 5 {
		t.Fatalf("Write n = %d, want 5 (half landed)", n)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b, _ := os.ReadFile(f.Name())
	if string(b) != "01234" {
		t.Fatalf("torn temp = %q, want first half", b)
	}
}

func TestFaultyShortWriteIsSilent(t *testing.T) {
	dir := t.TempDir()
	reg := faults.NewRegistry(7)
	reg.Arm(faults.Fault{Site: SiteWrite, Kind: faults.ShortWrite, Trigger: faults.Trigger{AtCall: 1}})
	fs := Faulty(OS, reg)

	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err != nil {
		t.Fatalf("ShortWrite must lie with a nil error, got %v", err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestFaultyTornRename(t *testing.T) {
	dir := t.TempDir()
	reg := faults.NewRegistry(7)
	reg.Arm(faults.Fault{Site: SiteRename, Kind: faults.TornRename, Trigger: faults.Trigger{AtCall: 1}})
	fs := Faulty(OS, reg)

	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := fs.Rename(src, dst)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn rename must fail loudly, err = %v", err)
	}
	if _, serr := os.Stat(src); !os.IsNotExist(serr) {
		t.Fatalf("source must be gone after torn rename, stat err = %v", serr)
	}
	b, rerr := os.ReadFile(dst)
	if rerr != nil {
		t.Fatalf("destination must exist (torn): %v", rerr)
	}
	if string(b) != "01234" {
		t.Fatalf("destination = %q, want first half of source", b)
	}
}

func TestFaultyMkdirOpenReadDirReadFileRemove(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := faults.NewRegistry(7)
	for _, site := range []faults.Site{SiteMkdir, SiteOpen, SiteReadDir, SiteRead, SiteRemove} {
		reg.Arm(faults.Fault{Site: site, Kind: faults.Error, Trigger: faults.Trigger{AtCall: 1}})
	}
	fs := Faulty(OS, reg)

	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("MkdirAll err = %v", err)
	}
	if _, err := fs.Open(path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Open err = %v", err)
	}
	if _, err := fs.ReadDir(dir); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("ReadDir err = %v", err)
	}
	if _, err := fs.ReadFile(path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("ReadFile err = %v", err)
	}
	if err := fs.Remove(path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Remove err = %v", err)
	}
	// All faults were AtCall:1 and have fired; the second round passes.
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatalf("MkdirAll second call: %v", err)
	}
	if _, err := fs.ReadFile(path); err != nil {
		t.Fatalf("ReadFile second call: %v", err)
	}
}

func TestFaultyDeterministicReplay(t *testing.T) {
	// Same schedule + Clone'd registries → byte-identical event logs
	// across two independent replays of the same operation sequence.
	master := faults.NewRegistry(42)
	master.Arm(faults.Fault{Site: SiteWrite, Kind: faults.Error, Trigger: faults.Trigger{Prob: 0.5}})
	master.Arm(faults.Fault{Site: SiteSync, Kind: faults.Error, Trigger: faults.Trigger{AtCall: 3}})

	run := func(reg *faults.Registry) []faults.Event {
		dir := t.TempDir()
		fs := Faulty(OS, reg)
		for i := 0; i < 8; i++ {
			_ = writeFile(fs, filepath.Join(dir, "f"), []byte("payload"))
		}
		return reg.Events()
	}
	a := run(master.Clone())
	b := run(master.Clone())
	if len(a) == 0 {
		t.Fatal("expected some fired events with Prob 0.5 over 8 writes")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
