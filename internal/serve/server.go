package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/fsys"
	"repro/internal/md"
)

// Job status values as reported by the API.
const (
	StatusRunning = "running" // admitted (queued or executing)
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Config describes a Server.
type Config struct {
	// DataDir roots the durable job store.
	DataDir string
	// Fleet configures the replica scheduler the jobs run on.
	Fleet fleet.Config
	// Tenancy is the per-tenant quota policy.
	Tenancy TenantPolicy
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// FS, when non-nil, replaces the real filesystem under the store
	// and every job's checkpoint directory — the chaos campaigns' disk.
	FS fsys.FS
	// Faults, when non-nil, is armed on every job's run config (force
	// corruption, worker panics) — the chaos campaigns' compute faults.
	Faults faults.Injector

	// DegradeAfter is how many consecutive admission-time storage
	// failures flip the server into degraded read-only mode (new
	// admissions refused with 503, existing jobs keep running and
	// streaming). Default 3; negative disables degraded mode.
	DegradeAfter int
	// ProbeEvery rate-limits the store write probes that let a degraded
	// server recover: at most one probe per interval, tried on the next
	// submission. Default 1s; negative probes on every submission (the
	// deterministic setting chaos campaigns use).
	ProbeEvery time.Duration
	// Now is the clock for probe pacing, replaceable for tests.
	// Default time.Now.
	Now func() time.Time
}

// jobState is the in-memory view of one job.
type jobState struct {
	rec      JobRecord
	status   string
	resumed  bool
	terminal *TerminalRecord
	progress *progressLog
}

// Server is the simulation service: HTTP admission in front, the fleet
// scheduler behind, the durable store underneath. Construct with
// NewServer, route through Handler, stop with Drain.
type Server struct {
	cfg     Config
	store   *Store
	tenants *tenants
	sched   *fleet.Scheduler

	// runCtx bounds every replica the server submits; runCancel is the
	// forced half of drain — cancelling it stops replicas within one MD
	// step, leaving their latest checkpoints as the resume points.
	runCtx    context.Context
	runCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*jobState
	idem     map[string]string // tenant\x00key -> job ID
	nextSeq  int
	draining bool
	shed     int64 // admissions rejected by fleet overload

	// Degraded-mode state machine: admitFails counts consecutive
	// admission-time storage failures; reaching cfg.DegradeAfter flips
	// degraded, and a successful store probe (or admission write)
	// clears it. storageErrors is the lifetime tally for /v1/stats.
	degraded      bool
	admitFails    int
	storageErrors int64
	lastProbe     time.Time

	jobsWG sync.WaitGroup // one per admitted job: its result waiter
}

// NewServer opens the store, recovers persisted state, re-admits
// incomplete jobs (resuming each from its latest CRC-valid
// checkpoint), and starts the fleet scheduler.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.DegradeAfter == 0 {
		cfg.DegradeAfter = 3
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	st, err := NewStoreFS(cfg.DataDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	scanned, maxSeq, err := st.Scan()
	if err != nil {
		return nil, err
	}
	runCtx, runCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     st,
		tenants:   newTenants(cfg.Tenancy),
		sched:     fleet.New(cfg.Fleet),
		runCtx:    runCtx,
		runCancel: runCancel,
		jobs:      make(map[string]*jobState),
		idem:      make(map[string]string),
		nextSeq:   maxSeq,
	}
	for _, sj := range scanned {
		js := &jobState{rec: sj.Record, progress: newProgressLog()}
		if sj.Record.Key != "" {
			s.idem[idemKey(sj.Record.Tenant, sj.Record.Key)] = sj.Record.ID
		}
		s.jobs[sj.Record.ID] = js
		if sj.Terminal != nil {
			js.status = sj.Terminal.Status
			js.terminal = sj.Terminal
			js.progress.close()
			continue
		}
		// Incomplete: the admission was promised to a client, so the job
		// is re-admitted without spending quota tokens (it was paid for
		// at first submission) — only the occupancy slot is retaken.
		js.status = StatusRunning
		js.resumed = true
		s.tenants.reserve(sj.Record.Tenant)
		rep, fromStep := s.replica(js, sj.System)
		if sj.CorruptCheckpoints > 0 {
			cfg.Logf("serve: job %s: skipped %d corrupt checkpoint(s) during recovery", sj.Record.ID, sj.CorruptCheckpoints)
		}
		cfg.Logf("serve: resuming job %s for tenant %q from step %d (%d remaining)",
			sj.Record.ID, sj.Record.Tenant, fromStep, sj.Record.Spec.Steps-fromStep)
		s.jobsWG.Add(1)
		// Submit synchronously: the fleet is fresh and its queue empty,
		// so recovered jobs are back in line before the constructor
		// returns — an immediate Drain then still runs them to their
		// terminal states instead of racing the re-admission. Only a
		// recovery load exceeding the whole queue falls back to the
		// background retry loop (and stays resumable if it loses a race
		// with shutdown).
		if tk, err := s.sched.Submit(s.runCtx, rep); err == nil {
			go s.await(js, tk)
		} else {
			go s.admitRecovered(js, rep)
		}
	}
	return s, nil
}

// idemKey joins a tenant and idempotency key into one index key; the
// NUL separator cannot appear in either half.
func idemKey(tenant, key string) string { return tenant + "\x00" + key }

// submitResponse is the POST /v1/jobs payload.
type submitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Deduplicated marks a response satisfied by the idempotency index:
	// the ID is the original job's, and no new run was started.
	Deduplicated bool `json:"deduplicated,omitempty"`
}

// apiError is the JSON error payload.
type apiError struct {
	Error string `json:"error"`
}

// submit runs the admission pipeline for one validated spec. It
// returns the response, the HTTP status to send, and for 429s the
// Retry-After hint in seconds (0 means no header).
func (s *Server) submit(tenant, key string, sp Spec) (submitResponse, int, string, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return submitResponse{}, http.StatusServiceUnavailable, "serve: draining, not accepting jobs", 0
	}
	if key != "" {
		if id, ok := s.idem[idemKey(tenant, key)]; ok {
			return submitResponse{ID: id, Status: s.jobs[id].status, Deduplicated: true}, http.StatusOK, "", 0
		}
	}
	if s.degraded && !s.tryRecoverLocked() {
		return submitResponse{}, http.StatusServiceUnavailable,
			"serve: degraded: storage unavailable, not accepting jobs", s.storageRetrySeconds()
	}
	if err := s.tenants.admit(tenant); err != nil {
		var qe *quotaError
		if errors.As(err, &qe) {
			return submitResponse{}, http.StatusTooManyRequests, err.Error(), retryAfterSeconds(qe.retryAfter)
		}
		return submitResponse{}, http.StatusInternalServerError, err.Error(), 0
	}
	// Quota spent; any failure below must release the slot.
	seq := s.nextSeq + 1
	id := JobID(seq)
	rec := JobRecord{ID: id, Tenant: tenant, Key: key, Spec: sp}
	if err := s.store.PutSpec(rec); err != nil {
		// PutSpec cleans up after itself, so nothing half-persisted
		// survives for the recovery scan to resurrect. A storage failure
		// is the disk's problem, not the client's: 503 + Retry-After,
		// and enough of them in a row flips the server degraded.
		s.tenants.release(tenant)
		s.noteStorageFailureLocked(err)
		return submitResponse{}, http.StatusServiceUnavailable, err.Error(), s.storageRetrySeconds()
	}
	s.admitFails = 0
	js := &jobState{rec: rec, status: StatusRunning, progress: newProgressLog()}
	rep, _ := s.replica(js, nil)
	tk, err := s.sched.Submit(s.runCtx, rep)
	if err != nil {
		// The spec was persisted but the fleet shed it: roll the
		// admission back entirely so a restart does not resurrect a job
		// the client was told to retry.
		if rerr := s.store.Remove(id); rerr != nil {
			s.cfg.Logf("serve: rolling back shed job %s: %v", id, rerr)
		}
		s.tenants.release(tenant)
		if errors.Is(err, fleet.ErrOverloaded) {
			s.shed++
			return submitResponse{}, http.StatusTooManyRequests, err.Error(), retryAfterSeconds(s.overloadRetry())
		}
		return submitResponse{}, http.StatusServiceUnavailable, err.Error(), 0
	}
	s.nextSeq = seq
	s.jobs[id] = js
	if key != "" {
		s.idem[idemKey(tenant, key)] = id
	}
	s.jobsWG.Add(1)
	go s.await(js, tk)
	return submitResponse{ID: id, Status: StatusRunning}, http.StatusAccepted, "", 0
}

// noteStorageFailureLocked (mu held) records one admission-time
// storage failure and flips the server into degraded read-only mode
// when cfg.DegradeAfter consecutive failures accumulate. In-flight
// jobs are untouched: the fleet keeps running them, progress keeps
// streaming, and their waiters still try to persist terminal records
// (logging, never crashing, on failure).
func (s *Server) noteStorageFailureLocked(err error) {
	s.storageErrors++
	s.admitFails++
	if s.cfg.DegradeAfter > 0 && s.admitFails >= s.cfg.DegradeAfter && !s.degraded {
		s.degraded = true
		s.lastProbe = s.cfg.Now()
		s.cfg.Logf("serve: degraded read-only mode after %d consecutive storage failures: %v", s.admitFails, err)
	}
}

// tryRecoverLocked (mu held) probes the store — at most once per
// cfg.ProbeEvery — and clears degraded mode when a full atomic write
// round-trips. Recovery is automatic: the next submission after the
// disk heals both clears the mode and is admitted normally.
func (s *Server) tryRecoverLocked() bool {
	now := s.cfg.Now()
	if s.cfg.ProbeEvery > 0 {
		if now.Sub(s.lastProbe) < s.cfg.ProbeEvery {
			return false
		}
		s.lastProbe = now
	}
	if err := s.store.Probe(); err != nil {
		s.storageErrors++
		return false
	}
	s.degraded = false
	s.admitFails = 0
	s.cfg.Logf("serve: storage probe succeeded; leaving degraded mode")
	return true
}

// storageRetrySeconds is the Retry-After hint for storage-failure
// 503s: the probe interval, because that is the soonest a retry could
// find the server recovered.
func (s *Server) storageRetrySeconds() int {
	d := s.cfg.ProbeEvery
	if d <= 0 {
		d = time.Second
	}
	return retryAfterSeconds(d)
}

// overloadRetry derives the Retry-After hint for fleet-overload
// rejections from the fleet's own backoff policy: the base backoff is
// what the fleet itself waits before retrying a replica, so it is the
// honest "come back when a slot may have opened" estimate; without a
// configured backoff the cap (default 2s) stands in.
func (s *Server) overloadRetry() time.Duration {
	fc := s.sched.Config()
	if fc.BaseBackoff > 0 {
		return fc.BaseBackoff
	}
	return fc.MaxBackoff
}

// replica assembles the fleet replica for a job. When sys is non-nil
// the replica resumes from it (remaining steps only); the returned int
// is the absolute step the replica starts at. The spec was validated
// at admission, so the config build cannot fail.
func (s *Server) replica(js *jobState, sys *md.System[float64]) (fleet.Replica, int) {
	gcfg, err := js.rec.Spec.GuardConfig(s.store.CheckpointDir(js.rec.ID))
	if err != nil {
		// Validate() accepted this spec; reaching here is a programming
		// error, and panicking surfaces it in tests immediately.
		panic(fmt.Sprintf("serve: job %s: validated spec rejected: %v", js.rec.ID, err))
	}
	gcfg.OnSegment = js.progress.onSegment
	gcfg.FS = s.cfg.FS // job checkpoints live on the same (possibly chaotic) disk
	gcfg.Run.Faults = s.cfg.Faults
	rep := fleet.Replica{ID: jobSeqOf(js.rec.ID), Guard: gcfg, Steps: js.rec.Spec.Steps}
	from := 0
	if sys != nil {
		rep.InitialSystem = sys
		from = sys.Steps
		rep.Steps = js.rec.Spec.Steps - from
		if rep.Steps < 0 {
			rep.Steps = 0
		}
	}
	return rep, from
}

// CheckpointDirOf exposes a job's checkpoint directory — the seam the
// chaos campaign watches to decide when a crash lands mid-trajectory.
func (s *Server) CheckpointDirOf(id string) string { return s.store.CheckpointDir(id) }

// jobSeqOf is jobSeq for IDs the server itself minted.
func jobSeqOf(id string) int {
	n, _ := jobSeq(id)
	return n
}

// admitRecovered offers a recovered job to the fleet, retrying past
// transient overload: unlike a live client, a recovered job cannot be
// told 429 — it was already accepted, possibly in a previous process.
func (s *Server) admitRecovered(js *jobState, rep fleet.Replica) {
	delay := 10 * time.Millisecond
	for {
		tk, err := s.sched.Submit(s.runCtx, rep)
		if err == nil {
			s.await(js, tk)
			return
		}
		if errors.Is(err, fleet.ErrClosed) {
			// Shutdown before the job got back in: leave it incomplete on
			// disk (no terminal record), so the next start resumes it.
			s.jobsWG.Done()
			return
		}
		select {
		case <-s.runCtx.Done():
			s.jobsWG.Done()
			return
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// await is each admitted job's result waiter: it turns the fleet
// result into the durable terminal record — except when the job was
// cancelled by a forced drain, in which case nothing is written and
// the job stays incomplete on disk, which is exactly what makes the
// next start resume it.
func (s *Server) await(js *jobState, tk *fleet.Ticket) {
	defer s.jobsWG.Done()
	res := tk.Wait()
	defer s.tenants.release(js.rec.Tenant)

	if res.Err != nil && s.runCtx.Err() != nil &&
		(errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, fleet.ErrClosed)) {
		s.cfg.Logf("serve: job %s interrupted by drain; will resume on restart", js.rec.ID)
		return
	}

	rec := TerminalRecord{ID: js.rec.ID, Attempts: res.Attempts, Resumed: js.resumed}
	switch res.State {
	case fleet.Succeeded, fleet.Recovered:
		rec.Status = StatusDone
		rec.Summary = res.Summary
		if rec.Summary != nil {
			// A resumed job's guard summary covers only the remaining
			// steps; report the job's total trajectory length.
			rec.Summary.Steps = js.rec.Spec.Steps
		}
	default:
		rec.Status = StatusFailed
		if res.Err != nil {
			rec.Error = res.Err.Error()
		}
	}
	var incidents = res.Incidents
	if res.Report != nil {
		incidents.Merge(&res.Report.Counts)
	}
	if incidents.Total() > 0 {
		rec.Incidents = incidents.String()
	}
	if err := s.store.PutTerminal(rec); err != nil {
		// The run finished but its terminal record did not commit; the
		// in-memory state still serves clients, and a restart will
		// re-run from the last checkpoint — wasteful, never wrong.
		s.cfg.Logf("serve: job %s: persisting terminal record: %v", js.rec.ID, err)
	}
	s.mu.Lock()
	js.status = rec.Status
	js.terminal = &rec
	s.mu.Unlock()
	js.progress.close()
}

// Drain is graceful shutdown: stop admitting (submissions get 503),
// let in-flight jobs finish, persist their terminal records, and
// release the fleet. If ctx expires first, the remaining replicas are
// cancelled — they stop within one MD step, their waiters skip the
// terminal write, and the jobs resume from their latest checkpoints on
// the next start. Drain returns ctx.Err() in that case.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	err := s.sched.Drain(ctx)
	if err != nil {
		// Forced half: cancel every replica, then the (now fast)
		// teardown completes unconditionally.
		s.runCancel()
		// Cannot fail: with every replica cancelled and a background
		// context, this only waits for the (now immediate) teardown.
		_ = s.sched.Drain(context.Background())
	}
	s.jobsWG.Wait()
	s.runCancel()
	return err
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// tenantOf extracts the tenant identity. Absent authentication
// infrastructure, the X-Tenant header is trusted; the default keeps
// single-user deployments working without headers.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// writeJSON writes a JSON response body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// The status line is already on the wire; an encode failure here is
	// a client disconnect, with no channel left to report it on.
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "serve: parsing spec: " + err.Error()})
		return
	}
	sp = sp.withDefaults()
	if err := sp.Validate(); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
		return
	}
	resp, code, errMsg, retryAfter := s.submit(tenantOf(r), r.Header.Get("Idempotency-Key"), sp)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	}
	if errMsg != "" {
		writeJSON(w, code, apiError{Error: errMsg})
		return
	}
	writeJSON(w, code, resp)
}

// statusResponse is the GET /v1/jobs/{id} payload.
type statusResponse struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Status   string `json:"status"`
	Spec     Spec   `json:"spec"`
	Resumed  bool   `json:"resumed,omitempty"`
	Progress *Event `json:"progress,omitempty"`
	Error    string `json:"error,omitempty"`
}

// job looks up a job by the request's path ID.
func (s *Server) job(r *http.Request) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

// status snapshots a job's API view under the server lock.
func (s *Server) status(js *jobState) statusResponse {
	s.mu.Lock()
	resp := statusResponse{
		ID: js.rec.ID, Tenant: js.rec.Tenant, Status: js.status,
		Spec: js.rec.Spec, Resumed: js.resumed,
	}
	if js.terminal != nil {
		resp.Error = js.terminal.Error
	}
	s.mu.Unlock()
	if e, ok := js.progress.latest(); ok {
		resp.Progress = &e
	}
	return resp
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js := s.job(r)
	if js == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "serve: no such job"})
		return
	}
	writeJSON(w, http.StatusOK, s.status(js))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		jobs = append(jobs, js)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].rec.ID < jobs[j].rec.ID })
	out := make([]statusResponse, len(jobs))
	for i, js := range jobs {
		out[i] = s.status(js)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	js := s.job(r)
	if js == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "serve: no such job"})
		return
	}
	s.mu.Lock()
	term := js.terminal
	s.mu.Unlock()
	if term == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{Error: "serve: job not finished"})
		return
	}
	writeJSON(w, http.StatusOK, term)
}

// handleEvents streams the job's committed-segment observables as
// Server-Sent Events: the backlog first, then live events as segments
// commit, then one terminal "done" event carrying the final status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	js := s.job(r)
	if js == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "serve: no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "serve: streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	ctx := r.Context()
	idx := 0
	for {
		events, done, wake := js.progress.next(idx)
		for _, e := range events {
			b, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: segment\ndata: %s\n\n", b); err != nil {
				return // client went away
			}
		}
		idx += len(events)
		flusher.Flush()
		if done {
			s.mu.Lock()
			status := js.status
			s.mu.Unlock()
			if _, err := fmt.Fprintf(w, "event: done\ndata: {\"status\":%q}\n\n", status); err == nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-wake:
		}
	}
}

// statsResponse is the GET /v1/stats payload.
type statsResponse struct {
	Jobs     map[string]int `json:"jobs"` // status -> count
	Tenants  []TenantStat   `json:"tenants"`
	Shed     int64          `json:"shed"`
	Draining bool           `json:"draining"`
	// Degraded reports storage-failure read-only mode: existing jobs
	// keep running and streaming, new admissions get 503.
	Degraded bool `json:"degraded"`
	// StorageErrors counts admission-time storage failures and failed
	// recovery probes over the server's lifetime.
	StorageErrors int64 `json:"storage_errors,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := statsResponse{
		Jobs: make(map[string]int), Shed: s.shed, Draining: s.draining,
		Degraded: s.degraded, StorageErrors: s.storageErrors,
	}
	for _, js := range s.jobs {
		st.Jobs[js.status]++
	}
	s.mu.Unlock()
	st.Tenants = s.tenants.snapshot()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, degraded := s.draining, s.degraded
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}
	if degraded {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.storageRetrySeconds()))
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "degraded: storage unavailable"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
