package serve

import (
	"sync"

	"repro/internal/guard"
)

// Event is one committed-segment observation as streamed to clients.
type Event struct {
	Step        int     `json:"step"`
	Energy      float64 `json:"energy"`
	Temperature float64 `json:"temperature"`
	PE          float64 `json:"pe"`
}

// progressLog is a job's append-only observable stream plus a
// broadcast: writers append committed-segment events (from the guard
// OnSegment seam) and readers replay the backlog then wait for more.
// The broadcast uses a generation channel — each append closes the
// current generation and installs a fresh one — so a reader can select
// its wakeup against the request context, which is what lets the SSE
// handler observe client disconnects without polling.
type progressLog struct {
	mu     sync.Mutex
	events []Event
	gen    chan struct{} // closed on every append and on close
	closed bool
}

func newProgressLog() *progressLog {
	return &progressLog{gen: make(chan struct{})}
}

// append records one event and wakes every waiting reader.
func (p *progressLog) append(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.events = append(p.events, e)
	close(p.gen)
	p.gen = make(chan struct{})
}

// close marks the stream complete (the job reached a terminal state)
// and wakes readers one last time.
func (p *progressLog) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.gen)
}

// next returns the events at index >= from, whether the stream is
// complete, and the channel that will signal the next change. The
// caller consumes the slice before calling next again; the log only
// ever appends, so the returned subslice is stable.
func (p *progressLog) next(from int) (events []Event, done bool, wake <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from < len(p.events) {
		events = p.events[from:]
	}
	return events, p.closed, p.gen
}

// latest returns the most recent event, if any — the status endpoint's
// progress snapshot.
func (p *progressLog) latest() (Event, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.events) == 0 {
		return Event{}, false
	}
	return p.events[len(p.events)-1], true
}

// onSegment adapts the log to the guard.Config.OnSegment seam.
func (p *progressLog) onSegment(g guard.Progress) {
	p.append(Event{Step: g.Step, Energy: g.Energy, Temperature: g.Temperature, PE: g.PE})
}
