package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// TenantPolicy bounds what one tenant can do to the shared fleet. Two
// independent mechanisms compose:
//
//   - a token bucket (Rate, Burst) bounds submission *rate* — a tenant
//     replaying a script at 10x its quota drains its own bucket and
//     sees 429s with Retry-After, while every other tenant's bucket is
//     untouched;
//   - a fair-share cap (MaxActive) bounds *occupancy* — how many of a
//     tenant's jobs may be admitted-but-unfinished at once, so a
//     tenant with a full bucket still cannot monopolize the fleet's
//     inflight slots with long jobs.
//
// Both are per-tenant and purely local state: no tenant's admission
// decision reads another tenant's counters, which is what makes the
// flood-isolation pin (one tenant at 10x quota, others' p99 and shed
// rate unchanged) hold by construction.
type TenantPolicy struct {
	// Rate is sustained submissions per second per tenant. Default 5.
	Rate float64
	// Burst is the bucket capacity — how many submissions a quiet
	// tenant can fire back-to-back. Default 10.
	Burst float64
	// MaxActive caps a tenant's admitted-but-unfinished jobs.
	// Default 4.
	MaxActive int
	// Now is the quota clock, replaceable for tests. Default time.Now.
	Now func() time.Time
}

func (p TenantPolicy) withDefaults() TenantPolicy {
	if p.Rate <= 0 {
		p.Rate = 5
	}
	if p.Burst <= 0 {
		p.Burst = 10
	}
	if p.MaxActive <= 0 {
		p.MaxActive = 4
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// tenantState is one tenant's quota ledger.
type tenantState struct {
	tokens float64   // current bucket level
	last   time.Time // last refill instant
	active int       // admitted-but-unfinished jobs
}

// tenants tracks per-tenant quota state under one lock; contention is
// trivial next to the cost of a single MD step.
type tenants struct {
	policy TenantPolicy

	mu sync.Mutex
	m  map[string]*tenantState
}

func newTenants(p TenantPolicy) *tenants {
	return &tenants{policy: p.withDefaults(), m: make(map[string]*tenantState)}
}

// ErrQuota is the sentinel inside quota rejections; the HTTP layer maps
// it to 429 with the embedded Retry-After hint.
type quotaError struct {
	tenant     string
	reason     string
	retryAfter time.Duration
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("serve: tenant %q over quota (%s); retry after %s", e.tenant, e.reason, e.retryAfter)
}

// admit spends one submission token and takes one active slot for the
// tenant, or returns a *quotaError with a Retry-After hint. Token and
// slot are taken atomically: a request rejected on the active cap does
// not burn a token.
func (t *tenants) admit(tenant string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(tenant)
	t.refill(st)
	if st.active >= t.policy.MaxActive {
		// Occupancy is released by job completion, not by the clock; the
		// honest hint is "about one job's worth of time", which the
		// caller cannot know — so advertise the rate interval as the
		// polling cadence.
		return &quotaError{tenant: tenant, reason: fmt.Sprintf("%d jobs active, cap %d", st.active, t.policy.MaxActive),
			retryAfter: t.interval()}
	}
	if st.tokens < 1 {
		// Time until the bucket refills to one whole token.
		need := (1 - st.tokens) / t.policy.Rate
		return &quotaError{tenant: tenant, reason: "submission rate exceeded",
			retryAfter: time.Duration(math.Ceil(need*1e3)) * time.Millisecond}
	}
	st.tokens--
	st.active++
	return nil
}

// release returns the tenant's active slot when a job reaches a
// terminal state (or was shed after admit).
func (t *tenants) release(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(tenant)
	if st.active > 0 {
		st.active--
	}
}

// reserve takes an active slot without spending a token — used when a
// restarted server re-admits recovered jobs, which were already paid
// for when first submitted.
func (t *tenants) reserve(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state(tenant).active++
}

// state returns (creating if needed) the ledger for a tenant.
// Callers hold t.mu.
func (t *tenants) state(tenant string) *tenantState {
	st := t.m[tenant]
	if st == nil {
		st = &tenantState{tokens: t.policy.Burst, last: t.policy.Now()}
		t.m[tenant] = st
	}
	return st
}

// refill credits tokens for the time elapsed since the last refill,
// capped at Burst. Callers hold t.mu.
func (t *tenants) refill(st *tenantState) {
	now := t.policy.Now()
	if dt := now.Sub(st.last).Seconds(); dt > 0 {
		st.tokens = math.Min(t.policy.Burst, st.tokens+dt*t.policy.Rate)
	}
	st.last = now
}

// interval is the steady-state gap between permitted submissions.
func (t *tenants) interval() time.Duration {
	return time.Duration(math.Ceil(1e3/t.policy.Rate)) * time.Millisecond
}

// snapshot returns per-tenant occupancy for /v1/stats, sorted by
// tenant name for deterministic output.
func (t *tenants) snapshot() []TenantStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TenantStat, 0, len(t.m))
	for name, st := range t.m {
		out = append(out, TenantStat{Tenant: name, Active: st.active})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// TenantStat is one tenant's occupancy in the /v1/stats payload.
type TenantStat struct {
	Tenant string `json:"tenant"`
	Active int    `json:"active"`
}

// retryAfterSeconds renders a Retry-After hint as whole seconds,
// rounded up, at least 1 — what the header grammar allows.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
