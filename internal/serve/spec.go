// Package serve is the simulation-as-a-service layer: a durable,
// multi-tenant HTTP/JSON job API over the fleet scheduler. It is the
// ROADMAP's "millions of users" direction made concrete — the paper
// frames the accelerator as a shared batch resource fed by many
// independent jobs, and this package supplies the serving shape around
// that resource which the layers below deliberately left out:
//
//   - a validated run-spec vocabulary with hard resource caps (a
//     public endpoint must bound what one request can cost);
//   - per-tenant token-bucket quotas and fair-share admission on top
//     of the fleet's load shedding, so one hot tenant cannot starve
//     the rest — quota rejections carry Retry-After hints derived from
//     the fleet backoff policy;
//   - durability: accepted specs are persisted with the same
//     tmp+fsync+rename discipline as the guard checkpoint store, and a
//     restarted server re-admits incomplete jobs, resuming each from
//     its latest CRC-valid guard checkpoint instead of step 0;
//   - idempotency keys: resubmission with the same (tenant, key)
//     returns the original job ID and never double-runs, including
//     across a process death;
//   - graceful drain: stop admitting, let in-flight replicas finish or
//     reach a checkpoint, then exit — threaded through the existing
//     context-cancellation stack, so even the forced half of drain
//     stops replicas within one MD step.
package serve

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/mdrun"
)

// Resource caps a multi-tenant endpoint enforces per job. They bound
// the cost of a single accepted spec; the tenant quotas bound how many
// such specs a tenant can have in flight.
const (
	// MaxAtoms bounds the system size one job may request.
	MaxAtoms = 65536
	// MaxSteps bounds the trajectory length one job may request.
	MaxSteps = 1_000_000
)

// Spec is the run request a client submits: the standard LJ-argon
// workload vocabulary of the CLI tools, as JSON. Zero fields take the
// paper's standard values (internal/core), so the minimal useful spec
// is {"atoms": N, "steps": M}. Specs are normalized (defaults made
// explicit) before persisting, so the spec a restarted server replays
// is byte-for-byte the run that was admitted.
type Spec struct {
	Atoms int `json:"atoms"`
	Steps int `json:"steps"`

	Density     float64 `json:"density,omitempty"`
	Temperature float64 `json:"temperature,omitempty"`
	Cutoff      float64 `json:"cutoff,omitempty"`
	Dt          float64 `json:"dt,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	// Shifted selects the cutoff-shifted LJ potential (continuous at
	// r_c); the default is the paper's plain truncated form.
	Shifted bool `json:"shifted,omitempty"`

	// Method selects the force kernel:
	// direct|pairlist|cellgrid|pardirect|parpairlist|parcellgrid
	// (default direct). Precision f32 swaps in the mixed-precision
	// variants of the pair-kernel methods, exactly as mdsim -precision.
	Method    string `json:"method,omitempty"`
	Precision string `json:"precision,omitempty"`
	// Workers sizes the host pool for the par* methods; 0 lets the
	// fleet assign the shared-budget fair share.
	Workers int     `json:"workers,omitempty"`
	Skin    float64 `json:"skin,omitempty"`

	// Thermostat is ""|rescale|berendsen. Langevin is excluded: its
	// noise stream position is not part of the checkpoint state, so a
	// resumed Langevin run would not continue the trajectory the
	// durability pin promises.
	Thermostat string `json:"thermostat,omitempty"`

	// CheckpointEvery is the durability cadence in steps (default 50):
	// how much work a crash can lose.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// KeepCheckpoints bounds the job's on-disk checkpoint retention
	// (guard's retain-last-M, default 3, max 64): long jobs must not
	// grow their ckpt/ directory without bound.
	KeepCheckpoints int `json:"keep_checkpoints,omitempty"`
}

// withDefaults returns the spec with every zero field made explicit.
func (sp Spec) withDefaults() Spec {
	if sp.Density == 0 {
		sp.Density = core.StdDensity
	}
	if sp.Temperature == 0 {
		sp.Temperature = core.StdTemperature
	}
	if sp.Cutoff == 0 {
		sp.Cutoff = core.StdCutoff
		// Match StandardWorkload's small-system cutoff reduction so tiny
		// test boxes stay valid.
		if box := math.Cbrt(float64(sp.Atoms) / sp.Density); 2*sp.Cutoff > box {
			sp.Cutoff = box / 2 * 0.99
		}
	}
	if sp.Dt == 0 {
		sp.Dt = core.StdDt
	}
	if sp.Seed == 0 {
		sp.Seed = core.StdSeed
	}
	if sp.Method == "" {
		sp.Method = "direct"
	}
	if sp.Precision == "" {
		sp.Precision = "f64"
	}
	if sp.Skin == 0 {
		sp.Skin = 0.4
	}
	if sp.CheckpointEvery == 0 {
		sp.CheckpointEvery = 50
	}
	if sp.KeepCheckpoints == 0 {
		sp.KeepCheckpoints = 3
	}
	return sp
}

// Normalized returns the spec with every zero field made explicit —
// the exact record the server persists and replays. Exported so the
// chaos campaign can build its uninterrupted oracle from the same
// normalized spec an admitted job runs under.
func (sp Spec) Normalized() Spec { return sp.withDefaults() }

// Validate rejects specs that are malformed or exceed the per-job
// resource caps. It is called on the normalized spec.
func (sp Spec) Validate() error {
	if sp.Atoms < 2 || sp.Atoms > MaxAtoms {
		return fmt.Errorf("serve: atoms %d out of range [2, %d]", sp.Atoms, MaxAtoms)
	}
	if sp.Steps < 1 || sp.Steps > MaxSteps {
		return fmt.Errorf("serve: steps %d out of range [1, %d]", sp.Steps, MaxSteps)
	}
	if !(sp.Density > 0) || !(sp.Temperature > 0) || !(sp.Cutoff > 0) || !(sp.Dt > 0) {
		return fmt.Errorf("serve: density/temperature/cutoff/dt must be positive (got %g/%g/%g/%g)",
			sp.Density, sp.Temperature, sp.Cutoff, sp.Dt)
	}
	if !(sp.Skin > 0) {
		return fmt.Errorf("serve: skin %g must be positive", sp.Skin)
	}
	if sp.Workers < 0 {
		return fmt.Errorf("serve: workers %d must be >= 0", sp.Workers)
	}
	if sp.CheckpointEvery < 1 {
		return fmt.Errorf("serve: checkpoint_every %d must be >= 1", sp.CheckpointEvery)
	}
	if sp.KeepCheckpoints < 1 || sp.KeepCheckpoints > 64 {
		return fmt.Errorf("serve: keep_checkpoints %d out of range [1, 64]", sp.KeepCheckpoints)
	}
	switch sp.Thermostat {
	case "", "rescale", "berendsen":
	default:
		return fmt.Errorf("serve: unknown thermostat %q (want rescale|berendsen)", sp.Thermostat)
	}
	if _, err := sp.forceMethod(); err != nil {
		return err
	}
	return nil
}

// forceMethod maps the method/precision strings to an mdrun method,
// mirroring mdsim's flag mapping (precision f32 stays on the audited
// mixed-precision ladder; see guard.SerialOf).
func (sp Spec) forceMethod() (mdrun.ForceMethod, error) {
	if sp.Precision == "f32" {
		switch sp.Method {
		case "pairlist":
			return mdrun.PairlistF32, nil
		case "parpairlist":
			return mdrun.ParallelPairlistF32, nil
		case "cellgrid":
			return mdrun.CellGridF32, nil
		default:
			return 0, fmt.Errorf("serve: precision f32 supports method pairlist|parpairlist|cellgrid, got %q", sp.Method)
		}
	}
	if sp.Precision != "f64" && sp.Precision != "" {
		return 0, fmt.Errorf("serve: precision %q: want f64|f32", sp.Precision)
	}
	switch sp.Method {
	case "direct", "":
		return mdrun.Direct, nil
	case "pairlist":
		return mdrun.Pairlist, nil
	case "cellgrid":
		return mdrun.CellGrid, nil
	case "pardirect":
		return mdrun.ParallelDirect, nil
	case "parpairlist":
		return mdrun.ParallelPairlist, nil
	case "parcellgrid":
		return mdrun.ParallelCellGrid, nil
	default:
		return 0, fmt.Errorf("serve: unknown method %q (want direct|pairlist|cellgrid|pardirect|parpairlist|parcellgrid)", sp.Method)
	}
}

// GuardConfig assembles the supervised-run configuration for this spec
// with checkpoints rooted at ckptDir — exported so the chaos campaign
// can run the oracle under exactly the admitted configuration. The
// caller wires OnSegment (and FS, for fault-injected runs).
func (sp Spec) GuardConfig(ckptDir string) (guard.Config, error) {
	method, err := sp.forceMethod()
	if err != nil {
		return guard.Config{}, err
	}
	cfg := mdrun.Config{
		Atoms: sp.Atoms, Density: sp.Density, Temperature: sp.Temperature,
		Lattice: lattice.FCC, Seed: sp.Seed,
		Cutoff: sp.Cutoff, Dt: sp.Dt, Shifted: sp.Shifted,
		Method: method, Workers: sp.Workers, PairlistSkin: sp.Skin,
	}
	switch sp.Thermostat {
	case "":
		cfg.Thermostat = mdrun.NVE
	case "rescale":
		cfg.Thermostat = mdrun.Rescale
	case "berendsen":
		cfg.Thermostat = mdrun.Berendsen
	}
	return guard.Config{
		Run:             cfg,
		CheckpointDir:   ckptDir,
		CheckpointEvery: sp.CheckpointEvery,
		KeepCheckpoints: sp.KeepCheckpoints,
	}, nil
}
