package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/fsys"
)

// swapInjector is a fault injector whose inner registry can be swapped
// at runtime — nil means a healthy disk. It is how these tests break
// and later heal the storage under a live server.
type swapInjector struct {
	mu sync.Mutex
	in faults.Injector
}

func (s *swapInjector) Fire(site faults.Site) *faults.Fault {
	s.mu.Lock()
	in := s.in
	s.mu.Unlock()
	return faults.Fire(in, site)
}

func (s *swapInjector) set(in faults.Injector) {
	s.mu.Lock()
	s.in = in
	s.mu.Unlock()
}

// httpFront puts an httptest front end on an already-built server —
// for tests that need a non-default Config.
func httpFront(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// enospcEverywhere arms persistent ENOSPC on every write-path site —
// the full disk.
func enospcEverywhere() *faults.Registry {
	reg := faults.NewRegistry(1)
	for _, site := range []faults.Site{fsys.SiteCreate, fsys.SiteWrite, fsys.SiteSync, fsys.SiteRename, fsys.SiteMkdir} {
		reg.Arm(faults.Fault{Site: site, Kind: faults.ENOSPC, Trigger: faults.Trigger{FromCall: 1}})
	}
	return reg
}

// TestDegradedModeUnderPersistentENOSPC pins the graceful-degradation
// acceptance criterion end to end: under a full disk the server
// refuses new admissions with 503 + Retry-After, keeps the in-flight
// job running to completion, reports degraded via /healthz and
// /v1/stats, and auto-recovers as soon as writes succeed again.
func TestDegradedModeUnderPersistentENOSPC(t *testing.T) {
	disk := &swapInjector{}
	srv, err := NewServer(Config{
		DataDir:      t.TempDir(),
		Fleet:        fleet.Config{MaxInflight: 1, QueueDepth: 16, WorkerBudget: 1},
		Logf:         t.Logf,
		FS:           fsys.Faulty(fsys.OS, disk),
		DegradeAfter: 2,
		ProbeEvery:   -1, // probe on every submission: deterministic recovery
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, srv)
	hs := httpFront(t, srv)

	// A healthy admission first — this job must survive the disk dying.
	inflight, code, _ := submit(t, hs, "t1", "", testSpec(400))
	if code != http.StatusAccepted {
		t.Fatalf("healthy submit: code %d", code)
	}

	disk.set(enospcEverywhere())

	// First storage failure: 503 + Retry-After, not yet degraded.
	_, code, hdr := submit(t, hs, "t1", "", testSpec(20))
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("submit on full disk: code %d, Retry-After %q", code, hdr.Get("Retry-After"))
	}
	if degradedNow(t, hs) {
		t.Fatal("degraded after a single failure with DegradeAfter 2")
	}
	// Second consecutive failure crosses DegradeAfter.
	_, code, _ = submit(t, hs, "t1", "", testSpec(20))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("second submit: code %d", code)
	}
	if !degradedNow(t, hs) {
		t.Fatal("not degraded after DegradeAfter consecutive failures")
	}

	// /healthz reports it with a Retry-After hint.
	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("healthz while degraded: code %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	// Degraded admissions are refused by the probe without burning
	// tenant quota.
	_, code, hdr = submit(t, hs, "t1", "", testSpec(20))
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("degraded submit: code %d, Retry-After %q", code, hdr.Get("Retry-After"))
	}

	// The in-flight job keeps running and completes despite the dead
	// disk (its checkpoint and terminal writes degrade to incidents).
	rec := awaitReport(t, hs, inflight.ID)
	if rec.Status != StatusDone {
		t.Fatalf("in-flight job under ENOSPC: status %q, err %q", rec.Status, rec.Error)
	}

	// Heal the disk: the very next submission probes, recovers, and is
	// admitted — automatically.
	disk.set(nil)
	sr, code, _ := submit(t, hs, "t1", "", testSpec(20))
	if code != http.StatusAccepted {
		t.Fatalf("submit after heal: code %d", code)
	}
	if degradedNow(t, hs) {
		t.Fatal("still degraded after successful recovery probe")
	}
	resp, err = hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after recovery: code %d", resp.StatusCode)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if rec := awaitReport(t, hs, sr.ID); rec.Status != StatusDone {
		t.Fatalf("post-recovery job: status %q", rec.Status)
	}
}

// TestDegradedProbePacing pins the probe clock seam: with a long
// ProbeEvery, a degraded server does not probe again until the
// injected clock advances, even if the disk has already healed.
func TestDegradedProbePacing(t *testing.T) {
	disk := &swapInjector{}
	now := time.Unix(1000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}
	srv, err := NewServer(Config{
		DataDir:      t.TempDir(),
		Fleet:        fleet.Config{MaxInflight: 1, QueueDepth: 16, WorkerBudget: 1},
		Logf:         t.Logf,
		FS:           fsys.Faulty(fsys.OS, disk),
		DegradeAfter: 1,
		ProbeEvery:   time.Hour,
		Now:          clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, srv)
	hs := httpFront(t, srv)

	disk.set(enospcEverywhere())
	if _, code, _ := submit(t, hs, "t1", "", testSpec(20)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit on full disk: code %d", code)
	}
	if !degradedNow(t, hs) {
		t.Fatal("DegradeAfter 1 must degrade on the first failure")
	}

	disk.set(nil) // disk heals, but the probe is paced out
	if _, code, _ := submit(t, hs, "t1", "", testSpec(20)); code != http.StatusServiceUnavailable {
		t.Fatalf("paced-out probe must still refuse: code %d", code)
	}

	nowMu.Lock()
	now = now.Add(2 * time.Hour)
	nowMu.Unlock()
	sr, code, _ := submit(t, hs, "t1", "", testSpec(20))
	if code != http.StatusAccepted {
		t.Fatalf("submit after clock advance: code %d", code)
	}
	if rec := awaitReport(t, hs, sr.ID); rec.Status != StatusDone {
		t.Fatalf("post-recovery job: status %q", rec.Status)
	}
}

// degradedNow reads /v1/stats and returns the degraded flag.
func degradedNow(t *testing.T, hs *httptest.Server) bool {
	t.Helper()
	resp, err := hs.Client().Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Degraded
}

// TestStoreRejectsSilentShortWrite pins the writeJSON hardening: a
// writer that drops half the bytes but reports success must fail the
// admission write (io.ErrShortWrite), and PutSpec must leave no
// half-persisted job directory behind for the recovery scan.
func TestStoreRejectsSilentShortWrite(t *testing.T) {
	reg := faults.NewRegistry(3)
	reg.Arm(faults.Fault{Site: fsys.SiteWrite, Kind: faults.ShortWrite, Trigger: faults.Trigger{AtCall: 1}})
	dir := t.TempDir()
	st, err := NewStoreFS(dir, fsys.Faulty(fsys.OS, reg))
	if err != nil {
		t.Fatal(err)
	}
	rec := JobRecord{ID: JobID(1), Tenant: "t", Spec: testSpec(10).Normalized()}
	err = st.PutSpec(rec)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("PutSpec under silent short write: err = %v, want ErrShortWrite", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "jobs", rec.ID)); !os.IsNotExist(serr) {
		t.Fatalf("half-persisted job dir left behind: %v", serr)
	}
	jobs, _, err := st.Scan()
	if err != nil || len(jobs) != 0 {
		t.Fatalf("Scan after failed admission: %d jobs, err %v", len(jobs), err)
	}
}

// TestScanPropagatesReadErrors pins the recovery-scan fix: a corrupt
// spec.json is skipped (nothing was promised under it), but a disk
// that refuses the read fails the scan loudly — a restart must never
// silently forget an acknowledged job.
func TestScanPropagatesReadErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := JobRecord{ID: JobID(1), Tenant: "t", Spec: testSpec(10).Normalized()}
	if err := st.PutSpec(good); err != nil {
		t.Fatal(err)
	}

	// Corrupt record: skipped, no error.
	torn := filepath.Join(dir, "jobs", JobID(2))
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(torn, "spec.json"), []byte(`{"id":"job-0000`), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, maxSeq, err := st.Scan()
	if err != nil {
		t.Fatalf("Scan with a corrupt record must succeed: %v", err)
	}
	if len(jobs) != 1 || jobs[0].Record.ID != good.ID {
		t.Fatalf("Scan = %d jobs, want only %s", len(jobs), good.ID)
	}
	if maxSeq != 2 {
		t.Fatalf("maxSeq = %d, want 2 (corrupt dirs still reserve their sequence)", maxSeq)
	}

	// I/O error on the read: loud failure.
	reg := faults.NewRegistry(5)
	reg.Arm(faults.Fault{Site: fsys.SiteRead, Kind: faults.Error, Trigger: faults.Trigger{FromCall: 1}})
	bad, err := NewStoreFS(dir, fsys.Faulty(fsys.OS, reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bad.Scan(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Scan over a refusing disk: err = %v, want the injected I/O error", err)
	}
}

// TestJobCheckpointRetentionBound pins the retention satellite: a job
// that checkpoints many times keeps exactly spec.keep_checkpoints
// files in its ckpt/ directory.
func TestJobCheckpointRetentionBound(t *testing.T) {
	dir := t.TempDir()
	srv, hs := newTestServer(t, dir, TenantPolicy{})
	defer drainNow(t, srv)

	sp := testSpec(100) // checkpoints every 10 steps: ~11 writes incl. baseline
	sp.KeepCheckpoints = 2
	sr, code, _ := submit(t, hs, "t1", "", sp)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	rec := awaitReport(t, hs, sr.ID)
	if rec.Status != StatusDone {
		t.Fatalf("job: status %q, err %q", rec.Status, rec.Error)
	}
	ents, err := os.ReadDir(srv.store.CheckpointDir(sr.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("ckpt/ holds %d files %v, want exactly 2", len(ents), names)
	}
}

func TestSpecKeepCheckpointsValidation(t *testing.T) {
	sp := testSpec(10)
	sp.KeepCheckpoints = 65
	if err := sp.Normalized().Validate(); err == nil {
		t.Fatal("keep_checkpoints 65 must be rejected")
	}
	sp.KeepCheckpoints = 0
	norm := sp.Normalized()
	if norm.KeepCheckpoints != 3 {
		t.Fatalf("default keep_checkpoints = %d, want 3", norm.KeepCheckpoints)
	}
	if err := norm.Validate(); err != nil {
		t.Fatalf("normalized spec must validate: %v", err)
	}
}
