package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fsys"
	"repro/internal/guard"
	"repro/internal/md"
	"repro/internal/mdrun"
)

// Store is the durable half of the server: one directory per job under
// <root>/jobs, holding
//
//	spec.json    the admission record (tenant, idempotency key,
//	             normalized spec) — written before the job is offered
//	             to the fleet, so an accepted job survives the process
//	sreport.json the terminal record (status, summary, incidents) —
//	             written exactly once, at completion
//	ckpt/        the job's guard checkpoint directory
//
// Both JSON files use the same atomic protocol as the guard checkpoint
// store — temp file in the target directory, fsync, rename, directory
// fsync — so a reader (including a restarted server) only ever sees
// complete files. A job directory with a valid spec and no terminal
// record is, by definition, incomplete: that is the whole recovery
// contract, and it makes "crashed before the report rename" and
// "crashed mid-run" the same case. All filesystem access goes through
// the fsys seam so chaos campaigns can fail any operation on schedule.
type Store struct {
	root string
	fs   fsys.FS
}

// JobRecord is the admission record persisted as spec.json.
type JobRecord struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Key is the idempotency key, empty if the client sent none. The
	// (tenant, key) index is rebuilt from these records at startup.
	Key  string `json:"key,omitempty"`
	Spec Spec   `json:"spec"`
}

// TerminalRecord is the completion record persisted as sreport.json.
type TerminalRecord struct {
	ID     string `json:"id"`
	Status string `json:"status"` // StatusDone or StatusFailed
	Error  string `json:"error,omitempty"`

	Summary *mdrun.Summary `json:"summary,omitempty"`
	// Incidents is the flattened guard/fleet incident tally ("nan: 1,
	// rollback: 1"); empty for a clean run.
	Incidents string `json:"incidents,omitempty"`
	// Attempts counts fleet-level guard runs (>1 means resubmission).
	Attempts int `json:"attempts,omitempty"`
	// Resumed marks a job that finished after at least one
	// checkpoint-resume across a server restart.
	Resumed bool `json:"resumed,omitempty"`
}

// NewStore opens (creating if needed) the store rooted at dir.
func NewStore(dir string) (*Store, error) { return NewStoreFS(dir, nil) }

// NewStoreFS is NewStore over an explicit filesystem seam (nil means
// the real one) — the constructor chaos campaigns use to stand a
// failing disk under the whole serving stack.
func NewStoreFS(dir string, fs fsys.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store needs a data directory")
	}
	fs = fsys.OrOS(fs)
	if err := fs.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: store root: %w", err)
	}
	return &Store{root: dir, fs: fs}, nil
}

// jobDir returns the directory for a job ID.
func (st *Store) jobDir(id string) string { return filepath.Join(st.root, "jobs", id) }

// CheckpointDir returns the guard checkpoint directory for a job ID —
// the per-job composition the resume path hands to
// guard.LatestCheckpoint.
func (st *Store) CheckpointDir(id string) string { return filepath.Join(st.jobDir(id), "ckpt") }

// FS exposes the store's filesystem seam so the rest of the serving
// stack (guard checkpoint store, resume scan) runs over the same disk.
func (st *Store) FS() fsys.FS { return st.fs }

// PutSpec persists the admission record for a new job. The job
// directory is created here; failure removes it again, so a failed
// admission leaves no half-persisted job for the recovery scan to
// resurrect.
func (st *Store) PutSpec(rec JobRecord) error {
	dir := st.jobDir(rec.ID)
	if err := st.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: job dir: %w", err)
	}
	if err := st.writeJSON(dir, "spec.json", rec); err != nil {
		_ = st.fs.RemoveAll(dir)
		return err
	}
	return nil
}

// PutTerminal persists the completion record, flipping the job to
// complete atomically (the rename is the commit point).
func (st *Store) PutTerminal(rec TerminalRecord) error {
	return st.writeJSON(st.jobDir(rec.ID), "sreport.json", rec)
}

// Remove deletes a job directory entirely — the rollback for a job
// that was persisted but then shed by the fleet admission queue (the
// client saw 429; a restart must not resurrect it).
func (st *Store) Remove(id string) error {
	return st.fs.RemoveAll(st.jobDir(id))
}

// GetTerminal loads the completion record, or nil for an incomplete
// job.
func (st *Store) GetTerminal(id string) (*TerminalRecord, error) {
	var rec TerminalRecord
	ok, err := st.readJSON(st.jobDir(id), "sreport.json", &rec)
	if err != nil || !ok {
		return nil, err
	}
	return &rec, nil
}

// Probe checks that the store can still complete a full atomic write:
// temp file, write, fsync, remove. The degraded-mode recovery loop
// calls this before accepting admissions again — a disk that fails
// admissions must demonstrably hold a byte before the server trusts
// it with a job.
func (st *Store) Probe() error {
	f, err := st.fs.CreateTemp(filepath.Join(st.root, "jobs"), ".probe-*")
	if err != nil {
		return fmt.Errorf("serve: probe: %w", err)
	}
	tmp := f.Name()
	p := []byte("probe")
	n, werr := f.Write(p)
	if werr == nil && n != len(p) {
		werr = io.ErrShortWrite
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	_ = st.fs.Remove(tmp)
	if werr != nil {
		return fmt.Errorf("serve: probe: %w", werr)
	}
	return nil
}

// ScannedJob is one job found on disk at startup. Terminal is nil for
// an incomplete job, in which case System is the state to resume from
// (nil means start over from step 0 — the job died before its first
// checkpoint survived).
type ScannedJob struct {
	Record   JobRecord
	Terminal *TerminalRecord
	System   *md.System[float64]
	// CorruptCheckpoints counts checkpoint files that failed CRC or
	// structural validation during discovery and were skipped.
	CorruptCheckpoints int
}

// errParse marks a record that was read fully but failed to parse —
// a torn or corrupt file, as opposed to a disk that refused the read.
// The recovery scan skips the former (nothing trustworthy was ever
// promised under that name) and propagates the latter (an acknowledged
// job may be hiding behind a transient I/O error; silently dropping it
// would break the no-acked-job-lost invariant).
var errParse = errors.New("serve: unparseable record")

// Scan walks the jobs directory and returns every persisted job —
// complete and incomplete, the latter with its latest trustworthy
// checkpoint loaded — plus the highest numeric job sequence seen:
// everything a restarted server needs to rebuild its in-memory view
// (status map, idempotency index, ID sequencing, resume set).
// Directories with a missing or corrupt spec.json are skipped (a crash
// between mkdir and the spec rename leaves exactly that shape, and
// nothing was promised to any client for it); a spec.json the disk
// refuses to read is an error — startup fails loudly rather than
// silently forgetting a job that was acknowledged.
func (st *Store) Scan() (jobs []ScannedJob, maxSeq int, err error) {
	entries, err := st.fs.ReadDir(filepath.Join(st.root, "jobs"))
	if err != nil {
		return nil, 0, fmt.Errorf("serve: scanning jobs: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if seq, ok := jobSeq(name); ok && seq > maxSeq {
			maxSeq = seq
		}
		var rec JobRecord
		ok, rerr := st.readJSON(st.jobDir(name), "spec.json", &rec)
		if rerr != nil && !errors.Is(rerr, errParse) {
			return nil, 0, fmt.Errorf("serve: scanning job %s: %w", name, rerr)
		}
		if rerr != nil || !ok || rec.ID != name {
			continue // orphan or corrupt admission record: never promised
		}
		sj := ScannedJob{Record: rec}
		var term TerminalRecord
		tok, terr := st.readJSON(st.jobDir(name), "sreport.json", &term)
		if terr != nil && !errors.Is(terr, errParse) {
			return nil, 0, fmt.Errorf("serve: scanning job %s: %w", name, terr)
		}
		if terr == nil && tok {
			sj.Terminal = &term
		} else {
			sj.System = guard.LatestCheckpointFS(st.fs, st.CheckpointDir(name), func(string, error) {
				sj.CorruptCheckpoints++
			})
		}
		jobs = append(jobs, sj)
	}
	return jobs, maxSeq, nil
}

// jobSeq extracts the numeric suffix of a "job-%06d" name.
func jobSeq(name string) (int, bool) {
	s, ok := strings.CutPrefix(name, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// JobID formats a sequence number as a job ID.
func JobID(seq int) string { return fmt.Sprintf("job-%06d", seq) }

// writeJSON atomically publishes v as <dir>/<name>: temp file, fsync,
// rename, directory fsync — the guard store's discipline, so a crash
// at any byte leaves either the old file or the new one, never a
// torn read for the recovery scan. The byte count of the write is
// checked explicitly: a writer that lies with a short count and a nil
// error (the classic NFS/quota shape) is caught here, before the
// rename can publish a torn record.
func (st *Store) writeJSON(dir, name string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serve: encoding %s: %w", name, err)
	}
	b = append(b, '\n')
	f, err := st.fs.CreateTemp(dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("serve: temp file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close() //mdlint:ignore closeerr the write already failed; its error is the one worth reporting
		_ = st.fs.Remove(tmp)
		return fmt.Errorf("serve: writing %s: %w", name, err)
	}
	n, err := f.Write(b)
	if err == nil && n != len(b) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = st.fs.Remove(tmp)
		return fmt.Errorf("serve: writing %s: %w", name, err)
	}
	if err := st.fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		_ = st.fs.Remove(tmp)
		return fmt.Errorf("serve: publishing %s: %w", name, err)
	}
	if d, err := st.fs.Open(dir); err == nil {
		_ = d.Sync() // best-effort: some filesystems refuse directory fsync
		_ = d.Close() // read-only directory handle; nothing buffered to lose
	}
	return nil
}

// readJSON loads <dir>/<name> into v; (false, nil) when the file does
// not exist, an errParse-wrapping error when it exists but does not
// parse, and a plain error when the disk refused the read.
func (st *Store) readJSON(dir, name string, v any) (bool, error) {
	b, err := st.fs.ReadFile(filepath.Join(dir, name))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("serve: reading %s: %w", name, err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return false, fmt.Errorf("serve: parsing %s: %w (%w)", name, err, errParse)
	}
	return true, nil
}
