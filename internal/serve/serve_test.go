package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/guard"
)

// testSpec is the standard small job the suite runs: tiny FCC box,
// rescale thermostat (deterministic, and thermostatted runs are not
// NVE-drift-checked, so the plain truncated potential cannot trip the
// watchdog), frequent checkpoints so resume tests have restore points.
func testSpec(steps int) Spec {
	return Spec{
		Atoms: 108, Steps: steps,
		Thermostat:      "rescale",
		CheckpointEvery: 10,
	}
}

// newTestServer builds a Server over a fresh temp store plus an HTTP
// front end. The fleet is single-inflight with a deep queue and one
// worker: deterministic and cheap.
func newTestServer(t *testing.T, dir string, tenancy TenantPolicy) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(Config{
		DataDir: dir,
		Fleet:   fleet.Config{MaxInflight: 1, QueueDepth: 16, WorkerBudget: 1},
		Tenancy: tenancy,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// drainNow force-quiesces a server at the end of a test.
func drainNow(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// submit POSTs a spec and returns the decoded response and status code.
func submit(t *testing.T, hs *httptest.Server, tenant, key string, sp Spec) (submitResponse, int, http.Header) {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", hs.URL+"/v1/jobs", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp.StatusCode, resp.Header
}

// awaitReport polls /report until the job reaches a terminal state.
func awaitReport(t *testing.T, hs *httptest.Server, id string) TerminalRecord {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := hs.Client().Get(hs.URL + "/v1/jobs/" + id + "/report")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var rec TerminalRecord
			if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return rec
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return TerminalRecord{}
}

// oracleEnergy runs the spec start-to-finish under guard directly —
// the same stack the server uses — and returns the final energy.
func oracleEnergy(t *testing.T, sp Spec, steps int) float64 {
	t.Helper()
	gcfg, err := sp.Normalized().GuardConfig(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	gcfg.Run.Workers = 1
	sup, err := guard.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	sum, _, err := sup.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	return sum.FinalEnergy
}

// TestSubmitAndComplete pins the basic serving contract: a valid spec
// is admitted with a job ID, runs to completion, and the final report
// carries the same physics a direct guard run of the same spec
// produces — the HTTP layer adds delivery, never dynamics.
func TestSubmitAndComplete(t *testing.T) {
	srv, hs := newTestServer(t, t.TempDir(), TenantPolicy{})
	defer drainNow(t, srv)

	sp := testSpec(30)
	sr, code, _ := submit(t, hs, "alice", "", sp)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if sr.ID != "job-000001" || sr.Status != StatusRunning {
		t.Fatalf("unexpected submit response: %+v", sr)
	}
	rec := awaitReport(t, hs, sr.ID)
	if rec.Status != StatusDone || rec.Summary == nil {
		t.Fatalf("terminal record: %+v", rec)
	}
	if rec.Summary.Steps != 30 {
		t.Fatalf("summary steps = %d, want 30", rec.Summary.Steps)
	}
	want := oracleEnergy(t, sp, 30)
	if rec.Summary.FinalEnergy != want {
		t.Fatalf("served FinalEnergy %v != direct run %v", rec.Summary.FinalEnergy, want)
	}

	// The status endpoint agrees, and carries progress.
	resp, err := hs.Client().Get(hs.URL + "/v1/jobs/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone || st.Progress == nil || st.Progress.Step != 30 {
		t.Fatalf("status: %+v", st)
	}
}

// TestIdempotency pins the no-double-run contract within one process:
// the same (tenant, key) returns the original job ID, marked
// deduplicated, and only one job exists; a different tenant reusing
// the key gets its own job.
func TestIdempotency(t *testing.T) {
	srv, hs := newTestServer(t, t.TempDir(), TenantPolicy{})
	defer drainNow(t, srv)

	sp := testSpec(20)
	first, code, _ := submit(t, hs, "alice", "key-1", sp)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	second, code, _ := submit(t, hs, "alice", "key-1", sp)
	if code != http.StatusOK || !second.Deduplicated || second.ID != first.ID {
		t.Fatalf("resubmit = %d %+v, want 200 dedup of %s", code, second, first.ID)
	}
	other, code, _ := submit(t, hs, "bob", "key-1", sp)
	if code != http.StatusAccepted || other.ID == first.ID {
		t.Fatalf("cross-tenant key collision: %d %+v", code, other)
	}
	// Exactly two jobs exist.
	resp, err := hs.Client().Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("job list has %d entries, want 2", len(list))
	}
}

// TestTenantQuota pins the token bucket: with a frozen clock, a tenant
// gets exactly Burst admissions, then 429s with a positive Retry-After
// — while a second tenant's bucket is untouched and keeps admitting.
func TestTenantQuota(t *testing.T) {
	now := time.Unix(1000, 0)
	srv, hs := newTestServer(t, t.TempDir(), TenantPolicy{
		Rate: 1, Burst: 3, MaxActive: 100,
		Now: func() time.Time { return now },
	})
	defer drainNow(t, srv)

	sp := testSpec(5)
	for i := 0; i < 3; i++ {
		if _, code, _ := submit(t, hs, "flood", "", sp); code != http.StatusAccepted {
			t.Fatalf("flood submit %d = %d, want 202", i, code)
		}
	}
	_, code, hdr := submit(t, hs, "flood", "", sp)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without a usable Retry-After (%q)", ra)
	}
	// The quiet tenant is unaffected by the flood.
	if _, code, _ := submit(t, hs, "quiet", "", sp); code != http.StatusAccepted {
		t.Fatalf("quiet tenant shed during flood: %d", code)
	}
	// Advancing the clock refills the flooding tenant.
	now = now.Add(2 * time.Second)
	if _, code, _ := submit(t, hs, "flood", "", sp); code != http.StatusAccepted {
		t.Fatalf("submit after refill = %d, want 202", code)
	}
}

// TestTenantActiveCap pins fair-share occupancy: a tenant with a full
// token bucket still cannot hold more than MaxActive unfinished jobs,
// and slots free up as jobs finish.
func TestTenantActiveCap(t *testing.T) {
	srv, hs := newTestServer(t, t.TempDir(), TenantPolicy{Rate: 1000, Burst: 1000, MaxActive: 2})
	defer drainNow(t, srv)

	// Long enough that both jobs are still unfinished when the third
	// submit arrives: the fleet has one slot, so the second job sits in
	// its queue for the whole first run, and occupancy is released only
	// at terminal state.
	sp := testSpec(2500)
	sp.CheckpointEvery = 1000
	var ids []string
	for i := 0; i < 2; i++ {
		sr, code, _ := submit(t, hs, "alice", "", sp)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, sr.ID)
	}
	if _, code, _ := submit(t, hs, "alice", "", sp); code != http.StatusTooManyRequests {
		t.Fatalf("submit over active cap = %d, want 429", code)
	}
	for _, id := range ids {
		awaitReport(t, hs, id)
	}
	if _, code, _ := submit(t, hs, "alice", "", sp); code != http.StatusAccepted {
		t.Fatalf("submit after slots freed = %d, want 202", code)
	}
}

// TestDurableResume is the in-process half of the crash-recovery pin:
// a server is force-drained mid-job (replicas cancelled at a step
// boundary, no terminal record written), a second server opens the
// same data directory, resumes the job from its latest checkpoint, and
// the final observables match an uninterrupted run of the same spec to
// 1e-8 — and an idempotent resubmit across the restart returns the
// original job ID without starting a second run.
func TestDurableResume(t *testing.T) {
	dir := t.TempDir()
	srv1, hs1 := newTestServer(t, dir, TenantPolicy{})

	sp := testSpec(400)
	sr, code, _ := submit(t, hs1, "alice", "resume-key", sp)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	// Wait for at least one on-disk checkpoint past step 0, then yank
	// the server with an already-expired drain deadline: the forced
	// path, cancelling the replica mid-run.
	waitForCheckpoint(t, filepath.Join(dir, "jobs", sr.ID, "ckpt"))
	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	if err := srv1.Drain(expired); err == nil {
		t.Fatal("forced drain reported clean completion; job finished before the kill — raise steps")
	}
	hs1.Close()

	// No terminal record was written: the job is incomplete on disk.
	if _, err := os.Stat(filepath.Join(dir, "jobs", sr.ID, "sreport.json")); !os.IsNotExist(err) {
		t.Fatalf("terminal record exists after forced drain (err=%v)", err)
	}

	// Restart on the same directory: the job is re-admitted and the
	// same idempotency key maps to it, not to a new run.
	srv2, hs2 := newTestServer(t, dir, TenantPolicy{})
	defer drainNow(t, srv2)
	again, code, _ := submit(t, hs2, "alice", "resume-key", sp)
	if code != http.StatusOK || !again.Deduplicated || again.ID != sr.ID {
		t.Fatalf("resubmit across restart = %d %+v, want dedup of %s", code, again, sr.ID)
	}

	rec := awaitReport(t, hs2, sr.ID)
	if rec.Status != StatusDone || rec.Summary == nil {
		t.Fatalf("resumed job: %+v", rec)
	}
	if !rec.Resumed {
		t.Fatal("terminal record not marked resumed")
	}
	if rec.Summary.Steps != sp.Steps {
		t.Fatalf("resumed summary steps = %d, want %d", rec.Summary.Steps, sp.Steps)
	}
	want := oracleEnergy(t, sp, sp.Steps)
	if diff := math.Abs(rec.Summary.FinalEnergy - want); !(diff <= 1e-8*math.Max(1, math.Abs(want))) {
		t.Fatalf("resumed FinalEnergy %v vs uninterrupted %v (diff %g)", rec.Summary.FinalEnergy, want, diff)
	}
	// Still exactly one job: the restart re-admitted, never duplicated.
	srv2.mu.Lock()
	n := len(srv2.jobs)
	srv2.mu.Unlock()
	if n != 1 {
		t.Fatalf("restarted server tracks %d jobs, want 1", n)
	}
}

// waitForCheckpoint blocks until dir holds a checkpoint for a step > 0.
func waitForCheckpoint(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(dir)
		if err == nil {
			for _, e := range entries {
				name := e.Name()
				if strings.HasPrefix(name, "ckpt-") && !strings.Contains(name, "000000000") {
					return
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no mid-run checkpoint appeared")
}

// TestDrainRejectsSubmits pins drain semantics at the API edge: during
// and after drain, submissions get 503 and health reports draining,
// while already-admitted jobs still complete and their reports remain
// fetchable.
func TestDrainRejectsSubmits(t *testing.T) {
	srv, hs := newTestServer(t, t.TempDir(), TenantPolicy{})
	sr, code, _ := submit(t, hs, "alice", "", testSpec(20))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	drainNow(t, srv)

	if _, code, _ := submit(t, hs, "alice", "", testSpec(5)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", code)
	}
	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	rec := awaitReport(t, hs, sr.ID)
	if rec.Status != StatusDone {
		t.Fatalf("drained job: %+v", rec)
	}
}

// TestSSEStream pins the observable stream: a client sees segment
// events with monotonically increasing steps and a final done event
// carrying the terminal status — including a client that connects
// after completion, which gets the whole backlog replayed.
func TestSSEStream(t *testing.T) {
	srv, hs := newTestServer(t, t.TempDir(), TenantPolicy{})
	defer drainNow(t, srv)

	sr, code, _ := submit(t, hs, "alice", "", testSpec(30))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	for _, phase := range []string{"live", "replay"} {
		segments, status := readSSE(t, hs, sr.ID)
		if len(segments) == 0 {
			t.Fatalf("%s: no segment events", phase)
		}
		last := -1
		for _, e := range segments {
			if e.Step <= last {
				t.Fatalf("%s: non-monotonic steps: %d after %d", phase, e.Step, last)
			}
			last = e.Step
		}
		if last != 30 || status != StatusDone {
			t.Fatalf("%s: final step %d status %q", phase, last, status)
		}
	}
}

// readSSE consumes one /events stream to its done event.
func readSSE(t *testing.T, hs *httptest.Server, id string) ([]Event, string) {
	t.Helper()
	resp, err := hs.Client().Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var (
		segments []Event
		event    string
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "segment":
				var e Event
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					t.Fatalf("segment payload %q: %v", data, err)
				}
				segments = append(segments, e)
			case "done":
				var d struct {
					Status string `json:"status"`
				}
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					t.Fatalf("done payload %q: %v", data, err)
				}
				return segments, d.Status
			}
		}
	}
	t.Fatalf("stream ended without done event (scan err %v)", sc.Err())
	return nil, ""
}

// TestBadRequests pins the validation edge: malformed JSON, spec-cap
// violations, unknown fields, and lookups of jobs that do not exist
// all produce clean, typed errors — never a panic, never an accepted
// garbage job.
func TestBadRequests(t *testing.T) {
	srv, hs := newTestServer(t, t.TempDir(), TenantPolicy{})
	defer drainNow(t, srv)

	post := func(body string) int {
		resp, err := hs.Client().Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON = %d, want 400", code)
	}
	if code := post(`{"atoms": 108, "steps": 10, "bogus": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", code)
	}
	for _, bad := range []string{
		fmt.Sprintf(`{"atoms": %d, "steps": 10}`, MaxAtoms+1),
		fmt.Sprintf(`{"atoms": 108, "steps": %d}`, MaxSteps+1),
		`{"atoms": 108, "steps": 10, "method": "warp-drive"}`,
		`{"atoms": 108, "steps": 10, "thermostat": "langevin"}`,
		`{"atoms": 108, "steps": 10, "precision": "f32", "method": "direct"}`,
		`{"atoms": 108, "steps": 10, "dt": -1}`,
	} {
		if code := post(bad); code != http.StatusUnprocessableEntity {
			t.Fatalf("spec %s = %d, want 422", bad, code)
		}
	}
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/report", "/v1/jobs/job-999999/events"} {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestScanToleratesGarbage pins the recovery scan's robustness: job
// directories with missing or corrupt admission records are skipped
// (nothing was promised for them), and a corrupt latest checkpoint is
// skipped in favor of an older valid one — the server always starts.
func TestScanToleratesGarbage(t *testing.T) {
	dir := t.TempDir()

	// A finished job, a dir without a spec, and a dir with a torn spec.
	srv1, hs1 := newTestServer(t, dir, TenantPolicy{})
	sr, code, _ := submit(t, hs1, "alice", "done-key", testSpec(20))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	awaitReport(t, hs1, sr.ID)
	drainNow(t, srv1)
	hs1.Close()
	if err := os.MkdirAll(filepath.Join(dir, "jobs", "job-000777"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs", "weird"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "weird", "spec.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, hs2 := newTestServer(t, dir, TenantPolicy{})
	defer drainNow(t, srv2)
	// The finished job survived with its report and idempotency key;
	// the garbage was ignored; IDs continue past the orphan dir's
	// number (no reuse under a contaminated namespace).
	rec := awaitReport(t, hs2, sr.ID)
	if rec.Status != StatusDone {
		t.Fatalf("restarted terminal record: %+v", rec)
	}
	again, code, _ := submit(t, hs2, "alice", "done-key", testSpec(20))
	if code != http.StatusOK || !again.Deduplicated || again.ID != sr.ID {
		t.Fatalf("idempotency lost across restart: %d %+v", code, again)
	}
	fresh, code, _ := submit(t, hs2, "alice", "", testSpec(5))
	if code != http.StatusAccepted || fresh.ID != JobID(778) {
		t.Fatalf("fresh ID after orphan dir = %+v (code %d), want %s", fresh, code, JobID(778))
	}
}

// TestFleetOverload429 pins load-shed mapping: when the fleet queue is
// full, the client sees 429 with a Retry-After derived from the fleet
// backoff policy, and the rolled-back job leaves no trace — neither on
// disk nor in the ID sequence.
func TestFleetOverload429(t *testing.T) {
	srv, err := NewServer(Config{
		DataDir: t.TempDir(),
		// One slot, no queue: the second concurrent job must shed.
		Fleet:   fleet.Config{MaxInflight: 1, QueueDepth: -1, WorkerBudget: 1, BaseBackoff: 3 * time.Second},
		Tenancy: TenantPolicy{Rate: 1000, Burst: 1000, MaxActive: 1000},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	defer drainNow(t, srv)

	first, code, _ := submit(t, hs, "alice", "", testSpec(200))
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	var hdr http.Header
	code = 0
	// The first job may finish quickly; shed detection needs the slot
	// occupied, so retry the overload probe while the first job runs.
	for i := 0; i < 50 && code != http.StatusTooManyRequests; i++ {
		_, code, hdr = submit(t, hs, "alice", "", testSpec(200))
		if code == http.StatusAccepted {
			t.Skip("fleet absorbed both jobs; overload not reachable on this machine")
		}
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d, want 429", code)
	}
	if hdr.Get("Retry-After") != "3" {
		t.Fatalf("Retry-After = %q, want 3 (fleet base backoff)", hdr.Get("Retry-After"))
	}
	// The shed job's directory was rolled back.
	entries, err := os.ReadDir(filepath.Join(srv.store.root, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d job dirs after shed, want 1 (only %s)", len(entries), first.ID)
	}
}
