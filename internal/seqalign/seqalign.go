// Package seqalign implements the dynamic-programming sequence
// alignment algorithms from the paper's related work — Smith-Waterman
// local alignment (mapped to GPUs by W. Liu et al. and Y. Liu et al.)
// and its global cousin Needleman-Wunsch — plus ports of the
// score-recurrence to this repository's GPU stream model (one shader
// pass per anti-diagonal) and MTA-2 model (one multithreaded loop per
// anti-diagonal, with full/empty-bit style dependencies), mirroring
// Bokhari & Sauer's "Sequence alignment on the Cray MTA-2".
//
// The reference implementations are exact (full-matrix with traceback
// and a linear-space score-only form); the device ports compute
// identical scores — pinned by the tests — while their modeled runtimes
// expose the same architectural trade-offs as the MD kernel: per-pass
// dispatch overhead on the GPU versus abundant fine-grained parallelism
// on the MTA.
package seqalign

import (
	"fmt"
)

// Scoring is a linear-gap scoring scheme: Match > 0 rewards equal
// residues, Mismatch <= 0 penalizes substitutions, Gap <= 0 penalizes
// insertions/deletions per residue.
type Scoring struct {
	Match    int
	Mismatch int
	Gap      int
}

// DefaultScoring is the classic +2/-1/-1 scheme.
func DefaultScoring() Scoring { return Scoring{Match: 2, Mismatch: -1, Gap: -1} }

// Validate checks the scheme's signs.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("seqalign: match score %d must be positive", s.Match)
	}
	if s.Mismatch > 0 {
		return fmt.Errorf("seqalign: mismatch score %d must be non-positive", s.Mismatch)
	}
	if s.Gap > 0 {
		return fmt.Errorf("seqalign: gap score %d must be non-positive", s.Gap)
	}
	return nil
}

// score returns the substitution score for residues x and y.
func (s Scoring) score(x, y byte) int {
	if x == y {
		return s.Match
	}
	return s.Mismatch
}

// Alignment is the result of a traceback.
type Alignment struct {
	Score int
	// AlignedA and AlignedB are equal-length strings over the residue
	// alphabet plus '-' for gaps.
	AlignedA, AlignedB []byte
	// Half-open residue ranges of the aligned regions in the inputs.
	StartA, EndA int
	StartB, EndB int
}

// Identity returns the fraction of alignment columns with equal
// residues (gaps count as mismatches).
func (a *Alignment) Identity() float64 {
	if len(a.AlignedA) == 0 {
		return 0
	}
	same := 0
	for i := range a.AlignedA {
		if a.AlignedA[i] == a.AlignedB[i] && a.AlignedA[i] != '-' {
			same++
		}
	}
	return float64(same) / float64(len(a.AlignedA))
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c int) int { return max2(max2(a, b), c) }

// SWScore computes the Smith-Waterman local-alignment score in
// O(len(a)·len(b)) time and O(len(b)) space (row-wise order — the
// cache-friendly layout a CPU uses).
func SWScore(a, b []byte, sc Scoring) (int, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		cur[0] = 0
		for j := 1; j <= len(b); j++ {
			h := max3(
				0,
				prev[j-1]+sc.score(a[i-1], b[j-1]),
				max2(prev[j]+sc.Gap, cur[j-1]+sc.Gap),
			)
			cur[j] = h
			if h > best {
				best = h
			}
		}
		prev, cur = cur, prev
	}
	return best, nil
}

// SWAlign computes the full Smith-Waterman alignment with traceback
// (O(len(a)·len(b)) space).
func SWAlign(a, b []byte, sc Scoring) (*Alignment, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rows, cols := len(a)+1, len(b)+1
	h := make([]int, rows*cols)
	at := func(i, j int) int { return i*cols + j }
	best, bi, bj := 0, 0, 0
	for i := 1; i < rows; i++ {
		for j := 1; j < cols; j++ {
			v := max3(
				0,
				h[at(i-1, j-1)]+sc.score(a[i-1], b[j-1]),
				max2(h[at(i-1, j)]+sc.Gap, h[at(i, j-1)]+sc.Gap),
			)
			h[at(i, j)] = v
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	// Traceback from the best cell to the first zero.
	var ra, rb []byte
	i, j := bi, bj
	for i > 0 && j > 0 && h[at(i, j)] > 0 {
		v := h[at(i, j)]
		switch {
		case v == h[at(i-1, j-1)]+sc.score(a[i-1], b[j-1]):
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i, j = i-1, j-1
		case v == h[at(i-1, j)]+sc.Gap:
			ra = append(ra, a[i-1])
			rb = append(rb, '-')
			i--
		case v == h[at(i, j-1)]+sc.Gap:
			ra = append(ra, '-')
			rb = append(rb, b[j-1])
			j--
		default:
			return nil, fmt.Errorf("seqalign: inconsistent traceback at (%d,%d)", i, j)
		}
	}
	reverse(ra)
	reverse(rb)
	return &Alignment{
		Score:    best,
		AlignedA: ra, AlignedB: rb,
		StartA: i, EndA: bi,
		StartB: j, EndB: bj,
	}, nil
}

// NWAlign computes the Needleman-Wunsch global alignment.
func NWAlign(a, b []byte, sc Scoring) (*Alignment, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rows, cols := len(a)+1, len(b)+1
	h := make([]int, rows*cols)
	at := func(i, j int) int { return i*cols + j }
	for i := 1; i < rows; i++ {
		h[at(i, 0)] = i * sc.Gap
	}
	for j := 1; j < cols; j++ {
		h[at(0, j)] = j * sc.Gap
	}
	for i := 1; i < rows; i++ {
		for j := 1; j < cols; j++ {
			h[at(i, j)] = max3(
				h[at(i-1, j-1)]+sc.score(a[i-1], b[j-1]),
				h[at(i-1, j)]+sc.Gap,
				h[at(i, j-1)]+sc.Gap,
			)
		}
	}
	var ra, rb []byte
	i, j := len(a), len(b)
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && h[at(i, j)] == h[at(i-1, j-1)]+sc.score(a[i-1], b[j-1]):
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i, j = i-1, j-1
		case i > 0 && h[at(i, j)] == h[at(i-1, j)]+sc.Gap:
			ra = append(ra, a[i-1])
			rb = append(rb, '-')
			i--
		case j > 0 && h[at(i, j)] == h[at(i, j-1)]+sc.Gap:
			ra = append(ra, '-')
			rb = append(rb, b[j-1])
			j--
		default:
			return nil, fmt.Errorf("seqalign: inconsistent NW traceback at (%d,%d)", i, j)
		}
	}
	reverse(ra)
	reverse(rb)
	return &Alignment{
		Score:    h[at(len(a), len(b))],
		AlignedA: ra, AlignedB: rb,
		StartA: 0, EndA: len(a),
		StartB: 0, EndB: len(b),
	}, nil
}

// SWScoreAntiDiagonal computes the Smith-Waterman score in wavefront
// (anti-diagonal) order: every cell of one anti-diagonal depends only
// on the two previous diagonals, so all its cells are independent.
// This is the data-parallel order both device ports use; it must —
// and does, per the tests — produce exactly SWScore's result.
func SWScoreAntiDiagonal(a, b []byte, sc Scoring) (int, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, nil
	}
	// diag d holds cells (i,j) with i+j = d, i in [max(1,d-m), min(n,d-1)].
	size := min2(n, m) + 1
	dPrev2 := make([]int, size+1) // d-2
	dPrev := make([]int, size+1)  // d-1
	dCur := make([]int, size+1)
	best := 0
	for d := 2; d <= n+m; d++ {
		iLo := max2(1, d-m)
		iHi := min2(n, d-1)
		for i := iLo; i <= iHi; i++ {
			j := d - i
			// Index within the stored diagonals: offset by that
			// diagonal's own iLo.
			diagAt := func(buf []int, dd, ii int) int {
				lo := max2(1, dd-m)
				hi := min2(n, dd-1)
				if ii < lo || ii > hi {
					return 0 // border cells are zero in SW
				}
				return buf[ii-lo]
			}
			up := diagAt(dPrev, d-1, i-1)    // (i-1, j) lives on diag d-1
			left := diagAt(dPrev, d-1, i)    // (i, j-1) lives on diag d-1
			diag := diagAt(dPrev2, d-2, i-1) // (i-1, j-1) lives on diag d-2
			h := max3(0, diag+sc.score(a[i-1], b[j-1]), max2(up+sc.Gap, left+sc.Gap))
			dCur[i-iLo] = h
			if h > best {
				best = h
			}
		}
		dPrev2, dPrev, dCur = dPrev, dCur, dPrev2
	}
	return best, nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func reverse(s []byte) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
