package seqalign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func makeDB(rng *xrand.Source, count, minLen, spread int) [][]byte {
	db := make([][]byte, count)
	for i := range db {
		db[i] = randomSeq(rng, minLen+rng.Intn(spread))
	}
	return db
}

func TestScanDatabaseMatchesPairwise(t *testing.T) {
	rng := xrand.New(42)
	query := randomSeq(rng, 40)
	db := makeDB(rng, 20, 20, 40)
	hits, err := ScanDatabase(query, db, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		want, err := SWScore(query, db[i], DefaultScoring())
		if err != nil {
			t.Fatal(err)
		}
		if h.Score != want || h.Index != i {
			t.Fatalf("hit %d = %+v, want score %d", i, h, want)
		}
	}
}

func TestSWGPUScanMatchesReference(t *testing.T) {
	rng := xrand.New(43)
	query := randomSeq(rng, 32)
	db := makeDB(rng, 25, 16, 48)
	want, err := ScanDatabase(query, db, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	got, bd, err := SWGPUScan(newGPU(t), query, db, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: gpu %+v, want %+v", i, got[i], want[i])
		}
	}
	if bd.Total() <= 0 {
		t.Fatal("no modeled cost")
	}
}

func TestScanAmortizesDispatches(t *testing.T) {
	// The whole point of the database-scan formulation: one dispatch
	// for the database instead of one per anti-diagonal per pair. For
	// the same total cell count, the scan's dispatch share must be far
	// smaller than per-pair wavefront alignment's.
	dev := newGPU(t)
	rng := xrand.New(44)
	query := randomSeq(rng, 64)
	db := makeDB(rng, 32, 64, 1)

	_, scanBD, err := SWGPUScan(dev, query, db, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	var pairTotal float64
	for _, s := range db {
		_, bd, err := SWGPU(dev, query, s, DefaultScoring())
		if err != nil {
			t.Fatal(err)
		}
		pairTotal += bd.Total()
	}
	if scanBD.Total() >= pairTotal/10 {
		t.Fatalf("scan (%v) not ≫ faster than per-pair wavefront (%v)", scanBD.Total(), pairTotal)
	}
}

func TestScanEmptyInputs(t *testing.T) {
	dev := newGPU(t)
	hits, bd, err := SWGPUScan(dev, nil, [][]byte{[]byte("ACGT")}, DefaultScoring())
	if err != nil || hits != nil || bd.Total() != 0 {
		t.Fatalf("empty query: %v %v %v", hits, bd.Total(), err)
	}
	hits, _, err = SWGPUScan(dev, []byte("ACGT"), nil, DefaultScoring())
	if err != nil || hits != nil {
		t.Fatalf("empty db: %v %v", hits, err)
	}
}

func TestTopHits(t *testing.T) {
	hits := []ScanHit{{0, 5}, {1, 9}, {2, 9}, {3, 1}, {4, 7}}
	top := TopHits(hits, 3)
	want := []ScanHit{{1, 9}, {2, 9}, {4, 7}}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("top = %+v, want %+v", top, want)
		}
	}
	if len(TopHits(hits, 99)) != len(hits) {
		t.Fatal("k > len not clamped")
	}
	if len(TopHits(nil, 3)) != 0 {
		t.Fatal("empty hits")
	}
	// Input must not be mutated.
	if hits[0].Index != 0 || hits[0].Score != 5 {
		t.Fatal("TopHits mutated its input")
	}
}

func TestParseFASTA(t *testing.T) {
	in := `>seq1 human fragment
ACGTacgt
ACGT

>seq2
tttt
`
	recs, err := ParseFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].ID != "seq1" || recs[0].Description != "human fragment" {
		t.Fatalf("header: %q %q", recs[0].ID, recs[0].Description)
	}
	if string(recs[0].Seq) != "ACGTACGTACGT" {
		t.Fatalf("seq1 = %q (case folding / multi-line failed)", recs[0].Seq)
	}
	if recs[1].ID != "seq2" || string(recs[1].Seq) != "TTTT" {
		t.Fatalf("seq2 = %+v", recs[1])
	}
}

func TestParseFASTAErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",            // data before header
		">\nACGT\n",         // empty header
		">a\n>b\nACGT\n",    // record a has no sequence
		">a\nAC1T\n",        // invalid residue
		">trailing-empty\n", // last record has no sequence
	}
	for i, in := range cases {
		if _, err := ParseFASTA(strings.NewReader(in)); err == nil {
			t.Errorf("case %d parsed: %q", i, in)
		}
	}
}

func TestParseFASTAEmptyInput(t *testing.T) {
	recs, err := ParseFASTA(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	rng := xrand.New(45)
	recs := []FASTARecord{
		{ID: "a", Description: "first", Seq: randomSeq(rng, 150)},
		{ID: "b", Seq: randomSeq(rng, 7)},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs, 60); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records", len(got))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || got[i].Description != recs[i].Description ||
			!bytes.Equal(got[i].Seq, recs[i].Seq) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestWriteFASTAErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []FASTARecord{{Seq: []byte("ACGT")}}, 0); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := WriteFASTA(&buf, []FASTARecord{{ID: "x\ny", Seq: []byte("A")}}, 0); err == nil {
		t.Fatal("multi-line header accepted")
	}
}

func TestSequences(t *testing.T) {
	recs := []FASTARecord{{ID: "a", Seq: []byte("ACGT")}}
	seqs := Sequences(recs)
	seqs[0][0] = 'T'
	if recs[0].Seq[0] != 'A' {
		t.Fatal("Sequences aliases record storage")
	}
}
