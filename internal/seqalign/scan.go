package seqalign

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Database scanning: the workload of the cited related work ("Bio-
// Sequence Database Scanning on a GPU", W. Liu et al.). Per-pair
// wavefront alignment pays one dispatch per anti-diagonal; scanning a
// database instead assigns each subject sequence to one shader
// invocation that computes the whole Smith-Waterman score in-shader —
// inter-task parallelism, the same shape as the MD port's one-shader-
// per-atom gather. One dispatch covers the entire database, which is
// what makes GPUs pay off for alignment.

// ScanHit is one database entry's score.
type ScanHit struct {
	Index int
	Score int
}

// ScanDatabase scores the query against every subject with the
// reference CPU kernel and returns the per-subject scores (the oracle
// for the device scans).
func ScanDatabase(query []byte, subjects [][]byte, sc Scoring) ([]ScanHit, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	hits := make([]ScanHit, len(subjects))
	for i, s := range subjects {
		score, err := SWScore(query, s, sc)
		if err != nil {
			return nil, err
		}
		hits[i] = ScanHit{Index: i, Score: score}
	}
	return hits, nil
}

// SWGPUScan scores the query against every subject on the GPU: subjects
// are concatenated into one texture with an offset table, and each
// shader invocation computes one subject's full Smith-Waterman score
// with a rolling two-row buffer in registers/local arrays — one
// dispatch total. Scores come back as one PCIe readback.
func SWGPUScan(dev *gpu.Device, query []byte, subjects [][]byte, sc Scoring) ([]ScanHit, *sim.Breakdown, error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	bd := sim.NewBreakdown()
	if len(subjects) == 0 || len(query) == 0 {
		return nil, bd, nil
	}

	// Concatenate the database; record offsets and lengths.
	var flat []byte
	offsets := make([]int, len(subjects))
	lengths := make([]int, len(subjects))
	for i, s := range subjects {
		offsets[i] = len(flat)
		lengths[i] = len(s)
		flat = append(flat, s...)
	}
	queryTex := gpu.NewTexture("query", packBytes(query))
	dbTex := gpu.NewTexture("db", packBytes(flat))
	meta := make([]gpu.Float4, len(subjects))
	for i := range subjects {
		meta[i] = gpu.Float4{float32(offsets[i]), float32(lengths[i]), 0, 0}
	}
	metaTex := gpu.NewTexture("meta", meta)
	bd.Add("pcie", dev.TransferSec(4*len(query))+dev.TransferSec(4*len(flat))+dev.TransferSec(16*len(subjects)))

	qLen := len(query)
	matchI, mismI, gapI := sc.Match, sc.Mismatch, sc.Gap
	shader := gpu.ShaderFunc(func(s *gpu.Sampler, idx int) gpu.Float4 {
		m := s.Fetch("meta", idx)
		off, slen := int(m[0]), int(m[1])
		// Row-wise SW with a rolling buffer, entirely inside the
		// shader invocation (registers / local memory on hardware).
		prev := make([]int, slen+1)
		cur := make([]int, slen+1)
		best := 0
		for i := 1; i <= qLen; i++ {
			qc := byte(s.Fetch("query", i-1)[0])
			for j := 1; j <= slen; j++ {
				dc := byte(s.Fetch("db", off+j-1)[0])
				sub := mismI
				if qc == dc {
					sub = matchI
				}
				h := max3(0, prev[j-1]+sub, max2(prev[j]+gapI, cur[j-1]+gapI))
				cur[j] = h
				if h > best {
					best = h
				}
				s.ALU(8)
			}
			prev, cur = cur, prev
		}
		return gpu.Float4{float32(best), 0, 0, 0}
	})
	pass, err := gpu.NewPass(shader, len(subjects), queryTex, dbTex, metaTex)
	if err != nil {
		return nil, nil, fmt.Errorf("seqalign: scan pass: %w", err)
	}
	out, sec := dev.Dispatch(pass)
	bd.Add("compute+dispatch", sec)
	bd.Add("pcie", dev.TransferSec(16*len(subjects)))

	hits := make([]ScanHit, len(subjects))
	for i := range hits {
		hits[i] = ScanHit{Index: i, Score: int(out[i][0])}
	}
	return hits, bd, nil
}

// TopHits returns the k best-scoring hits, ties broken by index.
func TopHits(hits []ScanHit, k int) []ScanHit {
	sorted := append([]ScanHit(nil), hits...)
	// Insertion sort by (score desc, index asc): databases in the tests
	// and examples are small; clarity over asymptotics.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0; j-- {
			a, b := sorted[j-1], sorted[j]
			if b.Score > a.Score || (b.Score == a.Score && b.Index < a.Index) {
				sorted[j-1], sorted[j] = b, a
			} else {
				break
			}
		}
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
