package seqalign

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// FASTA I/O: the interchange format every sequence database uses. The
// parser accepts multi-line records, skips blank lines, normalizes
// residues to upper case, and rejects structurally broken input.

// FASTARecord is one sequence with its header.
type FASTARecord struct {
	// ID is the first whitespace-delimited token after '>'.
	ID string
	// Description is the rest of the header line (may be empty).
	Description string
	Seq         []byte
}

// ParseFASTA reads every record from r.
func ParseFASTA(r io.Reader) ([]FASTARecord, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var records []FASTARecord
	var cur *FASTARecord
	line := 0
	for s.Scan() {
		line++
		text := strings.TrimSpace(s.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ">") {
			if cur != nil && len(cur.Seq) == 0 {
				return nil, fmt.Errorf("seqalign: line %d: record %q has no sequence", line, cur.ID)
			}
			header := strings.TrimSpace(text[1:])
			if header == "" {
				return nil, fmt.Errorf("seqalign: line %d: empty FASTA header", line)
			}
			id, desc := header, ""
			if sp := strings.IndexAny(header, " \t"); sp >= 0 {
				id, desc = header[:sp], strings.TrimSpace(header[sp+1:])
			}
			records = append(records, FASTARecord{ID: id, Description: desc})
			cur = &records[len(records)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seqalign: line %d: sequence data before any header", line)
		}
		for _, c := range []byte(text) {
			switch {
			case c >= 'a' && c <= 'z':
				cur.Seq = append(cur.Seq, c-'a'+'A')
			case c >= 'A' && c <= 'Z', c == '*', c == '-':
				cur.Seq = append(cur.Seq, c)
			default:
				return nil, fmt.Errorf("seqalign: line %d: invalid residue %q", line, c)
			}
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	if cur != nil && len(cur.Seq) == 0 {
		return nil, fmt.Errorf("seqalign: record %q has no sequence", cur.ID)
	}
	return records, nil
}

// WriteFASTA writes records with the given line width (0 means 60).
func WriteFASTA(w io.Writer, records []FASTARecord, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if rec.ID == "" {
			return fmt.Errorf("seqalign: cannot write record with empty ID")
		}
		if strings.ContainsAny(rec.ID+rec.Description, "\n\r") {
			return fmt.Errorf("seqalign: record %q: header must be a single line", rec.ID)
		}
		header := ">" + rec.ID
		if rec.Description != "" {
			header += " " + rec.Description
		}
		if _, err := fmt.Fprintln(bw, header); err != nil {
			return err
		}
		for off := 0; off < len(rec.Seq); off += width {
			end := off + width
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.Write(rec.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Sequences extracts just the residue strings, in order.
func Sequences(records []FASTARecord) [][]byte {
	out := make([][]byte, len(records))
	for i, r := range records {
		out[i] = bytes.Clone(r.Seq)
	}
	return out
}
