package seqalign

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: run as ordinary tests over their seed corpus in `go
// test`, and accept arbitrary inputs under `go test -fuzz`.

// FuzzParseFASTA must never panic and must round-trip whatever it
// accepts.
func FuzzParseFASTA(f *testing.F) {
	f.Add(">a desc\nACGT\n")
	f.Add(">a\nAC\nGT\n\n>b\ntttt\n")
	f.Add("")
	f.Add(">x\n")
	f.Add("junk\n>y\nAC\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ParseFASTA(strings.NewReader(in))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write/parse round trip.
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, recs, 60); err != nil {
			return // headers with exotic content may be unwritable
		}
		again, err := ParseFASTA(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !bytes.Equal(again[i].Seq, recs[i].Seq) {
				t.Fatalf("record %d sequence changed", i)
			}
		}
	})
}

// FuzzSWOrdersAgree checks the row-order and anti-diagonal evaluations
// on arbitrary byte strings (any alphabet).
func FuzzSWOrdersAgree(f *testing.F) {
	f.Add([]byte("ACGT"), []byte("AGCT"))
	f.Add([]byte(""), []byte("A"))
	f.Add([]byte("AAAA"), []byte("AAAA"))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) > 200 || len(b) > 200 {
			return // keep the quadratic DP bounded
		}
		sc := DefaultScoring()
		s1, err1 := SWScore(a, b, sc)
		s2, err2 := SWScoreAntiDiagonal(a, b, sc)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors on valid scoring: %v, %v", err1, err2)
		}
		if s1 != s2 {
			t.Fatalf("orders disagree: %d vs %d", s1, s2)
		}
		// Affine with open=0 must also agree.
		s3, err := SWScoreAffine(a, b, AffineScoring{Match: sc.Match, Mismatch: sc.Mismatch, GapOpen: 0, GapExtend: sc.Gap})
		if err != nil {
			t.Fatal(err)
		}
		if s3 != s1 {
			t.Fatalf("affine(open=0) disagrees: %d vs %d", s3, s1)
		}
	})
}
