package seqalign

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestAffineValidation(t *testing.T) {
	if err := DefaultAffineScoring().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AffineScoring{
		{Match: 0, Mismatch: -1, GapOpen: -1, GapExtend: -1},
		{Match: 2, Mismatch: 1, GapOpen: -1, GapExtend: -1},
		{Match: 2, Mismatch: -1, GapOpen: 1, GapExtend: -1},
		{Match: 2, Mismatch: -1, GapOpen: -1, GapExtend: 1},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("accepted %+v", sc)
		}
	}
	if _, err := SWScoreAffine([]byte("A"), []byte("A"), AffineScoring{}); err == nil {
		t.Fatal("zero scheme accepted by SWScoreAffine")
	}
}

func TestAffineReducesToLinearWhenOpenIsZero(t *testing.T) {
	// GapOpen = 0 makes a length-k gap cost k*GapExtend: exactly the
	// linear scheme.
	prop := func(seed uint64, nRaw, mRaw uint8) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, int(nRaw%50)+1)
		b := randomSeq(rng, int(mRaw%50)+1)
		linear, err1 := SWScore(a, b, Scoring{Match: 2, Mismatch: -1, Gap: -1})
		affine, err2 := SWScoreAffine(a, b, AffineScoring{Match: 2, Mismatch: -1, GapOpen: 0, GapExtend: -1})
		return err1 == nil && err2 == nil && linear == affine
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAffinePenalizesManyShortGaps(t *testing.T) {
	// One length-2 gap (open once) must beat two separate length-1 gaps
	// (open twice) under affine scoring. Construct sequences whose best
	// alignments differ exactly that way:
	//   a = ACGTACGT            b1 = ACGTXXACGT (one 2-gap)
	//   vs b2 = ACGXTACXGT-ish arrangements.
	sc := AffineScoring{Match: 3, Mismatch: -3, GapOpen: -4, GapExtend: -1}
	a := []byte("ACGTACGT")
	oneGap := []byte("ACGTGGACGT")  // needs one gap of length 2
	twoGaps := []byte("ACGGTACGGT") // needs two gaps of length 1
	s1, err := SWScoreAffine(a, oneGap, sc)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SWScoreAffine(a, twoGaps, sc)
	if err != nil {
		t.Fatal(err)
	}
	// One length-2 gap: 8 matches - (open 4 + 2 extends) = 24 - 6 = 18.
	if s1 != 18 {
		t.Fatalf("one-gap score = %d, want 18", s1)
	}
	// Two separate gaps pay the open penalty twice; the DP may trade a
	// gap for a mismatch but cannot reach the single-gap score.
	if s2 >= s1 {
		t.Fatalf("two-gap score %d not below one-gap score %d", s2, s1)
	}
}

func TestAffineMonotoneInOpenPenalty(t *testing.T) {
	// A harsher gap-open penalty can never raise the score.
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, 30)
		b := randomSeq(rng, 30)
		cheap := AffineScoring{Match: 2, Mismatch: -1, GapOpen: -1, GapExtend: -1}
		dear := AffineScoring{Match: 2, Mismatch: -1, GapOpen: -5, GapExtend: -1}
		s1, err1 := SWScoreAffine(a, b, cheap)
		s2, err2 := SWScoreAffine(a, b, dear)
		return err1 == nil && err2 == nil && s2 <= s1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAffineIdenticalSequences(t *testing.T) {
	s := []byte("ACGTACGTAC")
	sc := DefaultAffineScoring()
	score, err := SWScoreAffine(s, s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s) * sc.Match; score != want {
		t.Fatalf("self score = %d, want %d", score, want)
	}
}

func TestAffineEmptyInputs(t *testing.T) {
	if score, err := SWScoreAffine(nil, []byte("ACGT"), DefaultAffineScoring()); err != nil || score != 0 {
		t.Fatalf("empty a: %d %v", score, err)
	}
	if score, err := SWScoreAffine([]byte("ACGT"), nil, DefaultAffineScoring()); err != nil || score != 0 {
		t.Fatalf("empty b: %d %v", score, err)
	}
}

func TestAffineNeverNegative(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, 20)
		b := randomSeq(rng, 20)
		s, err := SWScoreAffine(a, b, AffineScoring{Match: 1, Mismatch: -10, GapOpen: -10, GapExtend: -10})
		return err == nil && s >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAffineSymmetry(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, 24)
		b := randomSeq(rng, 31)
		sc := DefaultAffineScoring()
		s1, _ := SWScoreAffine(a, b, sc)
		s2, _ := SWScoreAffine(b, a, sc)
		return s1 == s2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
