package seqalign

import "fmt"

// Affine gap penalties (Gotoh's algorithm): a gap of length k costs
// GapOpen + k·GapExtend instead of k·Gap, which is what production
// alignment tools — including the Smith-Waterman implementations the
// paper's related work accelerates — actually score with. Opening a gap
// is expensive; extending one is cheap.

// AffineScoring is the affine-gap scheme.
type AffineScoring struct {
	Match     int // > 0
	Mismatch  int // <= 0
	GapOpen   int // <= 0, charged once per gap
	GapExtend int // <= 0, charged per gap residue
}

// DefaultAffineScoring is the common +2/-1/-2/-1 scheme.
func DefaultAffineScoring() AffineScoring {
	return AffineScoring{Match: 2, Mismatch: -1, GapOpen: -2, GapExtend: -1}
}

// Validate checks the scheme's signs.
func (s AffineScoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("seqalign: match score %d must be positive", s.Match)
	}
	if s.Mismatch > 0 {
		return fmt.Errorf("seqalign: mismatch score %d must be non-positive", s.Mismatch)
	}
	if s.GapOpen > 0 {
		return fmt.Errorf("seqalign: gap-open score %d must be non-positive", s.GapOpen)
	}
	if s.GapExtend > 0 {
		return fmt.Errorf("seqalign: gap-extend score %d must be non-positive", s.GapExtend)
	}
	return nil
}

func (s AffineScoring) score(x, y byte) int {
	if x == y {
		return s.Match
	}
	return s.Mismatch
}

// SWScoreAffine computes the Smith-Waterman score under affine gap
// penalties with Gotoh's three-matrix recurrence, in O(len(a)·len(b))
// time and O(len(b)) space.
//
//	E(i,j) = max(E(i,j-1)+ext, H(i,j-1)+open+ext)   gap in a
//	F(i,j) = max(F(i-1,j)+ext, H(i-1,j)+open+ext)   gap in b
//	H(i,j) = max(0, H(i-1,j-1)+sub(a_i,b_j), E(i,j), F(i,j))
//
// With GapOpen == 0 this reduces exactly to the linear-gap SWScore with
// Gap = GapExtend, which the property tests pin.
func SWScoreAffine(a, b []byte, sc AffineScoring) (int, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	m := len(b)
	hPrev := make([]int, m+1) // H(i-1, ·)
	hCur := make([]int, m+1)
	fPrev := make([]int, m+1) // F(i-1, ·)
	fCur := make([]int, m+1)
	// Row 0: local alignment borders are all zero; E/F borders are
	// "minus infinity" so a gap can never start outside the matrix.
	negInf := minInt / 4
	for j := 0; j <= m; j++ {
		fPrev[j] = negInf
	}
	best := 0
	for i := 1; i <= len(a); i++ {
		hCur[0] = 0
		fCur[0] = negInf
		e := negInf // E(i, 0)
		for j := 1; j <= m; j++ {
			e = max2(e+sc.GapExtend, hCur[j-1]+sc.GapOpen+sc.GapExtend)
			fCur[j] = max2(fPrev[j]+sc.GapExtend, hPrev[j]+sc.GapOpen+sc.GapExtend)
			h := max3(0, hPrev[j-1]+sc.score(a[i-1], b[j-1]), max2(e, fCur[j]))
			hCur[j] = h
			if h > best {
				best = h
			}
		}
		hPrev, hCur = hCur, hPrev
		fPrev, fCur = fCur, fPrev
	}
	return best, nil
}

const minInt = -int(^uint(0)>>1) - 1
