package seqalign_test

import (
	"fmt"
	"log"

	"repro/internal/seqalign"
)

// The classic textbook pair, aligned locally with traceback.
func ExampleSWAlign() {
	al, err := seqalign.SWAlign(
		[]byte("TGTTACGG"),
		[]byte("GGTTGACTA"),
		seqalign.Scoring{Match: 3, Mismatch: -3, Gap: -2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n%s\nscore %d\n", al.AlignedA, al.AlignedB, al.Score)
	// Output:
	// GTT-AC
	// GTTGAC
	// score 13
}

// Affine gaps prefer one long gap over several short ones.
func ExampleSWScoreAffine() {
	sc := seqalign.AffineScoring{Match: 3, Mismatch: -3, GapOpen: -4, GapExtend: -1}
	oneGap, _ := seqalign.SWScoreAffine([]byte("ACGTACGT"), []byte("ACGTGGACGT"), sc)
	fmt.Println(oneGap)
	// Output:
	// 18
}

// Scanning a database returns per-subject scores; TopHits ranks them.
func ExampleScanDatabase() {
	query := []byte("ACGTACGT")
	db := [][]byte{
		[]byte("TTTTTTTT"),
		[]byte("ACGTACGT"),
		[]byte("ACGTTCGT"),
	}
	hits, err := seqalign.ScanDatabase(query, db, seqalign.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range seqalign.TopHits(hits, 2) {
		fmt.Printf("subject %d: score %d\n", h.Index, h.Score)
	}
	// Output:
	// subject 1: score 16
	// subject 2: score 13
}
