package seqalign

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/mta"
	"repro/internal/sim"
)

// This file ports the Smith-Waterman score recurrence to the two
// device models the paper's related work targets: the GPU stream
// processor (W. Liu et al.; Y. Liu et al.) and the Cray MTA-2
// (Bokhari & Sauer). Both use the anti-diagonal wavefront order — all
// cells of one diagonal are independent — and both produce scores
// identical to the reference implementation (pinned by the tests).

// SWGPU computes the Smith-Waterman score on the GPU stream model: one
// shader pass per anti-diagonal, with both sequences and the two
// previous diagonals bound as read-only textures and the new diagonal
// as the pass output. Diagonal buffers are indexed by the row i (length
// n+1, zero outside the live window), which matches how the published
// ports lay out their ping-pong buffers. Each diagonal is read back
// over PCIe and the running maximum folds on the CPU, like the MD
// port's potential energy.
//
// The modeled time exposes the port's real cost structure: n+m-1
// dispatches mean the per-pass overhead dominates for short sequences —
// which is exactly why the published GPU alignment work targets
// database scanning, not single short pairs.
func SWGPU(dev *gpu.Device, a, b []byte, sc Scoring) (int, *sim.Breakdown, error) {
	if err := sc.Validate(); err != nil {
		return 0, nil, err
	}
	bd := sim.NewBreakdown()
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, bd, nil
	}

	seqA := gpu.NewTexture("seqA", packBytes(a))
	seqB := gpu.NewTexture("seqB", packBytes(b))
	bd.Add("pcie", dev.TransferSec(4*len(a))+dev.TransferSec(4*len(b)))

	// Diagonal buffers indexed by i in [0, n]; zero everywhere a
	// diagonal has no cell — which is also the SW border value.
	prev2 := gpu.NewTexture("prev2", make([]gpu.Float4, n+1))
	prev := gpu.NewTexture("prev", make([]gpu.Float4, n+1))

	best := 0
	matchF, mismF, gapF := float32(sc.Match), float32(sc.Mismatch), float32(sc.Gap)
	scratch := make([]gpu.Float4, n+1)
	for d := 2; d <= n+m; d++ {
		iLo := max2(1, d-m)
		iHi := min2(n, d-1)
		trips := iHi - iLo + 1

		shader := gpu.ShaderFunc(func(s *gpu.Sampler, k int) gpu.Float4 {
			i := iLo + k
			j := d - i
			ra := s.Fetch("seqA", i-1)[0]
			rb := s.Fetch("seqB", j-1)[0]
			sub := mismF
			if ra == rb {
				sub = matchF
			}
			up := s.Fetch("prev", i-1)[0]    // (i-1, j) on diagonal d-1
			left := s.Fetch("prev", i)[0]    // (i, j-1) on diagonal d-1
			diag := s.Fetch("prev2", i-1)[0] // (i-1, j-1) on diagonal d-2
			h := max4f(0, diag+sub, up+gapF, left+gapF)
			// ~8 ALU ops per cell: substitution select, three adds,
			// three max/selects, plus address math folded in.
			s.ALU(8)
			return gpu.Float4{h, 0, 0, 0}
		})
		pass, err := gpu.NewPass(shader, trips, seqA, seqB, prev, prev2)
		if err != nil {
			return 0, nil, fmt.Errorf("seqalign: diagonal %d: %w", d, err)
		}
		out, sec := dev.Dispatch(pass)
		bd.Add("compute+dispatch", sec)
		bd.Add("pcie", dev.TransferSec(16*trips))
		for _, cell := range out {
			if int(cell[0]) > best {
				best = int(cell[0])
			}
		}

		// Ping-pong: d-1 becomes d-2; the fresh diagonal becomes d-1.
		// On hardware this is a framebuffer-object rebind (free); the
		// functional model re-uploads the i-indexed buffer.
		if err := copyInto(prev2, prev); err != nil {
			return 0, nil, err
		}
		for i := range scratch {
			scratch[i] = gpu.Float4{}
		}
		for k, cell := range out {
			scratch[iLo+k] = cell
		}
		if err := prev.Update(scratch); err != nil {
			return 0, nil, err
		}
	}
	return best, bd, nil
}

// copyInto overwrites dst with src's texels (equal lengths).
func copyInto(dst, src *gpu.Texture) error {
	if dst.Len() != src.Len() {
		return fmt.Errorf("seqalign: texture copy length mismatch %d != %d", dst.Len(), src.Len())
	}
	buf := make([]gpu.Float4, src.Len())
	for i := range buf {
		buf[i] = src.At(i)
	}
	return dst.Update(buf)
}

// packBytes stores one residue per texel (x component).
func packBytes(s []byte) []gpu.Float4 {
	out := make([]gpu.Float4, len(s))
	for i, c := range s {
		out[i] = gpu.Float4{float32(c), 0, 0, 0}
	}
	return out
}

func max4f(a, b, c, d float32) float32 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	if d > m {
		m = d
	}
	return m
}

// SWMTA computes the Smith-Waterman score on the MTA-2 model: each
// anti-diagonal is a dependence-free loop the compiler parallelizes
// across streams, and the wavefront's short head and tail diagonals
// cannot saturate the machine — LoopCyclesWithTrips models exactly
// that. The functional score comes from the same anti-diagonal
// recurrence the machine would execute.
func SWMTA(m *mta.Machine, a, b []byte, sc Scoring) (int, *sim.Breakdown, error) {
	if err := sc.Validate(); err != nil {
		return 0, nil, err
	}
	score, err := SWScoreAntiDiagonal(a, b, sc)
	if err != nil {
		return 0, nil, err
	}
	bd := sim.NewBreakdown()
	n, mm := len(a), len(b)
	var cycles float64
	for d := 2; d <= n+mm; d++ {
		iLo := max2(1, d-mm)
		iHi := min2(n, d-1)
		trips := iHi - iLo + 1
		if trips <= 0 {
			continue
		}
		var l sim.Ledger
		// Per cell: 5 uncached loads (two residues, up, left, diag),
		// ~7 ALU ops (substitution select, adds, maxes), 1 store, loop
		// overhead.
		cells := int64(trips)
		l.Add(sim.OpLoad, 5*cells)
		l.Add(sim.OpFAdd, 3*cells)
		l.Add(sim.OpCmp, 4*cells)
		l.Add(sim.OpInt, 2*cells)
		l.Add(sim.OpStore, cells)
		cycles += m.LoopCyclesWithTrips(&l, true, trips)
	}
	bd.Add("compute", cycles/m.ClockHz())
	return score, bd, nil
}
