package seqalign

import (
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/mta"
	"repro/internal/xrand"
)

func newGPU(t testing.TB) *gpu.Device {
	t.Helper()
	d, err := gpu.New(gpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newMTA(t testing.TB) *mta.Machine {
	t.Helper()
	m, err := mta.New(mta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSWGPUScoresMatchReference(t *testing.T) {
	dev := newGPU(t)
	prop := func(seed uint64, nRaw, mRaw uint8) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, int(nRaw%40)+1)
		b := randomSeq(rng, int(mRaw%40)+1)
		sc := DefaultScoring()
		want, err1 := SWScore(a, b, sc)
		got, _, err2 := SWGPU(dev, a, b, sc)
		return err1 == nil && err2 == nil && got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSWMTAScoresMatchReference(t *testing.T) {
	m := newMTA(t)
	prop := func(seed uint64, nRaw, mRaw uint8) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, int(nRaw%60)+1)
		b := randomSeq(rng, int(mRaw%60)+1)
		sc := DefaultScoring()
		want, err1 := SWScore(a, b, sc)
		got, _, err2 := SWMTA(m, a, b, sc)
		return err1 == nil && err2 == nil && got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSWGPUDispatchOverheadDominatesShortPairs(t *testing.T) {
	// For a short pair, n+m-1 dispatches swamp the per-cell compute —
	// the reason published GPU alignment work targets database scans.
	dev := newGPU(t)
	rng := xrand.New(3)
	a := randomSeq(rng, 48)
	b := randomSeq(rng, 48)
	_, bd, err := SWGPU(dev, a, b, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	overhead := bd.Component("compute+dispatch")
	if overhead <= 0 {
		t.Fatal("no dispatch cost accounted")
	}
	// 95 diagonals at 60 µs dispatch each: must exceed 5 ms.
	if overhead < 95*50e-6 {
		t.Fatalf("dispatch-dominated runtime = %v, implausibly small", overhead)
	}
}

func TestSWMTAWavefrontStartupCost(t *testing.T) {
	// Square inputs of growing size: the cost per cell falls as longer
	// diagonals saturate the streams, then flattens. Compare per-cell
	// cost for tiny vs large inputs.
	m := newMTA(t)
	perCell := func(n int) float64 {
		rng := xrand.New(7)
		a := randomSeq(rng, n)
		b := randomSeq(rng, n)
		_, bd, err := SWMTA(m, a, b, DefaultScoring())
		if err != nil {
			t.Fatal(err)
		}
		return bd.Total() / float64(n*n)
	}
	small := perCell(8)   // diagonals of at most 8 cells: never saturated
	large := perCell(512) // mostly saturated diagonals
	if small < 3*large {
		t.Fatalf("per-cell cost small=%v vs large=%v; wavefront startup effect missing", small, large)
	}
}

func TestSWMTAFasterWithMoreStreamsOnlyWhenWide(t *testing.T) {
	rng := xrand.New(9)
	a := randomSeq(rng, 256)
	b := randomSeq(rng, 256)
	cfgFew := mta.DefaultConfig()
	cfgFew.Streams = 8
	few, err := mta.New(cfgFew)
	if err != nil {
		t.Fatal(err)
	}
	_, bdFew, err := SWMTA(few, a, b, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	_, bdFull, err := SWMTA(newMTA(t), a, b, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if bdFull.Total() >= bdFew.Total() {
		t.Fatalf("128 streams (%v) not faster than 8 (%v) on wide diagonals",
			bdFull.Total(), bdFew.Total())
	}
}

func TestSWGPUEmptyInput(t *testing.T) {
	dev := newGPU(t)
	score, bd, err := SWGPU(dev, nil, []byte("ACGT"), DefaultScoring())
	if err != nil || score != 0 {
		t.Fatalf("score=%d err=%v", score, err)
	}
	if bd.Total() != 0 {
		t.Fatalf("empty input cost %v", bd.Total())
	}
}

func TestDevicePortsRejectBadScoring(t *testing.T) {
	bad := Scoring{Match: 0}
	if _, _, err := SWGPU(newGPU(t), []byte("A"), []byte("A"), bad); err == nil {
		t.Fatal("SWGPU accepted bad scoring")
	}
	if _, _, err := SWMTA(newMTA(t), []byte("A"), []byte("A"), bad); err == nil {
		t.Fatal("SWMTA accepted bad scoring")
	}
}

func TestSWGPULongerHandChecked(t *testing.T) {
	sc := Scoring{Match: 3, Mismatch: -3, Gap: -2}
	got, _, err := SWGPU(newGPU(t), []byte("TGTTACGG"), []byte("GGTTGACTA"), sc)
	if err != nil {
		t.Fatal(err)
	}
	if got != 13 {
		t.Fatalf("GPU score = %d, want 13", got)
	}
}
