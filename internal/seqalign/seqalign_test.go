package seqalign

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scoring{
		{Match: 0, Mismatch: -1, Gap: -1},
		{Match: -2, Mismatch: -1, Gap: -1},
		{Match: 2, Mismatch: 1, Gap: -1},
		{Match: 2, Mismatch: -1, Gap: 1},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("accepted %+v", sc)
		}
	}
}

func TestSWHandChecked(t *testing.T) {
	// Classic textbook pair: TGTTACGG vs GGTTGACTA with +3/-3/-2 has a
	// best local alignment GTT-AC / GTTGAC with score 13.
	sc := Scoring{Match: 3, Mismatch: -3, Gap: -2}
	score, err := SWScore([]byte("TGTTACGG"), []byte("GGTTGACTA"), sc)
	if err != nil {
		t.Fatal(err)
	}
	if score != 13 {
		t.Fatalf("score = %d, want 13", score)
	}
	al, err := SWAlign([]byte("TGTTACGG"), []byte("GGTTGACTA"), sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 13 {
		t.Fatalf("alignment score = %d, want 13", al.Score)
	}
	if string(al.AlignedA) != "GTT-AC" || string(al.AlignedB) != "GTTGAC" {
		t.Fatalf("alignment = %s / %s", al.AlignedA, al.AlignedB)
	}
}

func TestSWIdenticalSequences(t *testing.T) {
	sc := DefaultScoring()
	s := []byte("ACGTACGTAC")
	score, err := SWScore(s, s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s) * sc.Match; score != want {
		t.Fatalf("self score = %d, want %d", score, want)
	}
	al, err := SWAlign(s, s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Identity() != 1.0 {
		t.Fatalf("self identity = %v", al.Identity())
	}
}

func TestSWDisjointAlphabetsScoreZero(t *testing.T) {
	score, err := SWScore([]byte("AAAA"), []byte("TTTT"), DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Fatalf("score = %d, want 0 (local alignment never goes negative)", score)
	}
}

func TestSWEmptyInputs(t *testing.T) {
	for _, pair := range [][2][]byte{{nil, nil}, {[]byte("ACGT"), nil}, {nil, []byte("ACGT")}} {
		if score, err := SWScore(pair[0], pair[1], DefaultScoring()); err != nil || score != 0 {
			t.Fatalf("empty input: score=%d err=%v", score, err)
		}
		if score, err := SWScoreAntiDiagonal(pair[0], pair[1], DefaultScoring()); err != nil || score != 0 {
			t.Fatalf("empty input (antidiag): score=%d err=%v", score, err)
		}
	}
}

func randomSeq(rng *xrand.Source, n int) []byte {
	const alphabet = "ACGT"
	s := make([]byte, n)
	for i := range s {
		s[i] = alphabet[rng.Intn(4)]
	}
	return s
}

func TestAntiDiagonalMatchesRowOrder(t *testing.T) {
	// The wavefront evaluation must agree with the standard row-order
	// recurrence on arbitrary inputs — the property both device ports
	// rest on.
	prop := func(seed uint64, nRaw, mRaw uint8) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, int(nRaw%60)+1)
		b := randomSeq(rng, int(mRaw%60)+1)
		sc := DefaultScoring()
		s1, err1 := SWScore(a, b, sc)
		s2, err2 := SWScoreAntiDiagonal(a, b, sc)
		return err1 == nil && err2 == nil && s1 == s2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSWAlignScoreMatchesSWScore(t *testing.T) {
	prop := func(seed uint64, nRaw, mRaw uint8) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, int(nRaw%40)+1)
		b := randomSeq(rng, int(mRaw%40)+1)
		sc := DefaultScoring()
		s, err1 := SWScore(a, b, sc)
		al, err2 := SWAlign(a, b, sc)
		return err1 == nil && err2 == nil && al.Score == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSWAlignmentIsConsistent(t *testing.T) {
	// Re-scoring the traceback output must reproduce the score, and
	// stripping gaps must give back the aligned substrings.
	rng := xrand.New(99)
	for trial := 0; trial < 50; trial++ {
		a := randomSeq(rng, 30+rng.Intn(30))
		b := randomSeq(rng, 30+rng.Intn(30))
		sc := DefaultScoring()
		al, err := SWAlign(a, b, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(al.AlignedA) != len(al.AlignedB) {
			t.Fatal("aligned strings differ in length")
		}
		rescore := 0
		for i := range al.AlignedA {
			ca, cb := al.AlignedA[i], al.AlignedB[i]
			switch {
			case ca == '-' || cb == '-':
				rescore += sc.Gap
			default:
				rescore += sc.score(ca, cb)
			}
		}
		if rescore != al.Score {
			t.Fatalf("rescored alignment = %d, want %d", rescore, al.Score)
		}
		if got := bytes.ReplaceAll(al.AlignedA, []byte("-"), nil); !bytes.Equal(got, a[al.StartA:al.EndA]) {
			t.Fatalf("gap-stripped A %q != input range %q", got, a[al.StartA:al.EndA])
		}
		if got := bytes.ReplaceAll(al.AlignedB, []byte("-"), nil); !bytes.Equal(got, b[al.StartB:al.EndB]) {
			t.Fatalf("gap-stripped B %q != input range %q", got, b[al.StartB:al.EndB])
		}
	}
}

func TestSWSymmetry(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, 25)
		b := randomSeq(rng, 35)
		sc := DefaultScoring()
		s1, _ := SWScore(a, b, sc)
		s2, _ := SWScore(b, a, sc)
		return s1 == s2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNWHandChecked(t *testing.T) {
	// GATTACA vs GCATGCU with +1/-1/-1: optimal global score is 0.
	sc := Scoring{Match: 1, Mismatch: -1, Gap: -1}
	al, err := NWAlign([]byte("GATTACA"), []byte("GCATGCU"), sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 0 {
		t.Fatalf("NW score = %d, want 0", al.Score)
	}
	if len(al.AlignedA) != len(al.AlignedB) {
		t.Fatal("aligned lengths differ")
	}
}

func TestNWCoversWholeSequences(t *testing.T) {
	rng := xrand.New(5)
	a := randomSeq(rng, 20)
	b := randomSeq(rng, 28)
	al, err := NWAlign(a, b, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.ReplaceAll(al.AlignedA, []byte("-"), nil); !bytes.Equal(got, a) {
		t.Fatalf("NW dropped residues of a: %q", got)
	}
	if got := bytes.ReplaceAll(al.AlignedB, []byte("-"), nil); !bytes.Equal(got, b) {
		t.Fatalf("NW dropped residues of b: %q", got)
	}
}

func TestNWGlobalLessOrEqualLocal(t *testing.T) {
	// A local alignment can always do at least as well as a global one.
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := randomSeq(rng, 20)
		b := randomSeq(rng, 20)
		sc := DefaultScoring()
		local, _ := SWScore(a, b, sc)
		global, err := NWAlign(a, b, sc)
		return err == nil && global.Score <= local
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityEmptyAlignment(t *testing.T) {
	al := &Alignment{}
	if al.Identity() != 0 {
		t.Fatal("empty alignment identity != 0")
	}
}

func TestInvalidScoringRejectedEverywhere(t *testing.T) {
	bad := Scoring{Match: 0}
	if _, err := SWScore([]byte("A"), []byte("A"), bad); err == nil {
		t.Fatal("SWScore accepted bad scoring")
	}
	if _, err := SWAlign([]byte("A"), []byte("A"), bad); err == nil {
		t.Fatal("SWAlign accepted bad scoring")
	}
	if _, err := NWAlign([]byte("A"), []byte("A"), bad); err == nil {
		t.Fatal("NWAlign accepted bad scoring")
	}
	if _, err := SWScoreAntiDiagonal([]byte("A"), []byte("A"), bad); err == nil {
		t.Fatal("SWScoreAntiDiagonal accepted bad scoring")
	}
}
