package mta

import "fmt"

// The Cray XMT projection: the paper's conclusion anticipates
// "significant performance gains from the upcoming XMT technology"
// while section 3.3 warns that the XMT "will not have the MTA-2's
// nearly uniform memory access latency, so data placement and access
// locality will be an important consideration". This file models that
// future-work machine so the anticipation can be tested: same
// 128-stream multithreaded processors, a higher clock, systems of up
// to 8000 processors — and a memory latency that now depends on how
// much of the data is placed locally.

// XMT machine parameters, from the Eldorado/XMT announcements the
// paper cites.
const (
	XMTClockHz = 500e6 // "will operate at a higher clock rate"
	XMTMaxCPUs = 8000  // "allows systems with up to 8000 processors"

	// xmtLocalLatency is the cost of a reference satisfied by the
	// processor's own memory; xmtRemoteLatency crosses the (Seastar)
	// network. The MTA-2's uniform ~150 falls between them: locality
	// now matters, in both directions.
	xmtLocalLatency  = 90
	xmtRemoteLatency = 1400
)

// XMTConfig builds a machine Config approximating an XMT node group:
// processors in [1, XMTMaxCPUs], and locality in [0,1] giving the
// fraction of memory references the programmer managed to place
// locally. The blended memory latency feeds the same stream-saturation
// model as the MTA-2; everything else (streams per processor, the loop
// compiler) carries over.
func XMTConfig(processors int, locality float64) (Config, error) {
	if processors < 1 || processors > XMTMaxCPUs {
		return Config{}, fmt.Errorf("mta: XMT processors must be in [1,%d], got %d", XMTMaxCPUs, processors)
	}
	if locality < 0 || locality > 1 {
		return Config{}, fmt.Errorf("mta: XMT locality must be in [0,1], got %v", locality)
	}
	cfg := DefaultConfig()
	cfg.ClockHz = XMTClockHz
	cfg.Processors = processors
	cfg.MemLatencyCycles = locality*xmtLocalLatency + (1-locality)*xmtRemoteLatency
	return cfg, nil
}

// XMTProjection compares the MTA-2 against XMT configurations on the
// same workload-independent basis: the speedup factor for a saturated
// parallel loop with the given instruction mix (memory-op fraction
// memFrac of all instructions). It captures the paper's anticipation
// quantitatively: when the machine stays saturated the XMT wins by the
// clock ratio and the processor count; when poor locality pushes the
// average latency beyond what 128 streams can hide, the win erodes.
func XMTProjection(memFrac float64, processors int, locality float64) (speedup float64, err error) {
	if memFrac < 0 || memFrac > 1 {
		return 0, fmt.Errorf("mta: memory fraction must be in [0,1], got %v", memFrac)
	}
	base := DefaultConfig()
	xmt, err := XMTConfig(processors, locality)
	if err != nil {
		return 0, err
	}
	perInstr := func(cfg Config) float64 {
		avgLat := memFrac*cfg.MemLatencyCycles + (1-memFrac)*cfg.ALULatencyCycles
		util := float64(cfg.Streams) / avgLat
		if util > 1 {
			util = 1
		}
		// seconds per instruction per processor-pool
		return 1 / (util * cfg.ClockHz * float64(cfg.Processors))
	}
	return perInstr(base) / perInstr(xmt), nil
}
