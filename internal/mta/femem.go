package mta

import "fmt"

// FEMemory models the MTA's word-level full/empty bits: every memory
// word carries a state bit, and synchronized loads/stores block until
// the word is in the required state. Bokhari & Sauer's MTA-2 sequence-
// alignment codes (the related work the paper cites) rely on exactly
// these operations for fine-grained synchronization.
//
// This model executes sequentially, so an operation that would block
// forever in a serial context (reading an empty word with no producer
// left, writing a full word with no consumer left) is reported as a
// deadlock error instead of hanging.
type FEMemory struct {
	full []bool
	val  []float64

	syncOps int64
}

// NewFEMemory returns n words, all empty.
func NewFEMemory(n int) *FEMemory {
	return &FEMemory{full: make([]bool, n), val: make([]float64, n)}
}

// Len returns the word count.
func (m *FEMemory) Len() int { return len(m.val) }

// SyncOps returns how many synchronized operations were performed
// (each pays a memory-latency trip in the timing model).
func (m *FEMemory) SyncOps() int64 { return m.syncOps }

func (m *FEMemory) check(i int) error {
	if i < 0 || i >= len(m.val) {
		return fmt.Errorf("mta: full/empty index %d out of range [0,%d)", i, len(m.val))
	}
	return nil
}

// WriteEF waits for empty, writes, and sets full ("write when empty,
// leave full").
func (m *FEMemory) WriteEF(i int, v float64) error {
	if err := m.check(i); err != nil {
		return err
	}
	if m.full[i] {
		return fmt.Errorf("mta: WriteEF to full word %d would deadlock", i)
	}
	m.val[i] = v
	m.full[i] = true
	m.syncOps++
	return nil
}

// ReadFE waits for full, reads, and sets empty ("read when full, leave
// empty") — the consume half of producer/consumer and of atomic
// updates.
func (m *FEMemory) ReadFE(i int) (float64, error) {
	if err := m.check(i); err != nil {
		return 0, err
	}
	if !m.full[i] {
		return 0, fmt.Errorf("mta: ReadFE from empty word %d would deadlock", i)
	}
	m.full[i] = false
	m.syncOps++
	return m.val[i], nil
}

// ReadFF waits for full and reads, leaving the word full (a plain
// synchronized read).
func (m *FEMemory) ReadFF(i int) (float64, error) {
	if err := m.check(i); err != nil {
		return 0, err
	}
	if !m.full[i] {
		return 0, fmt.Errorf("mta: ReadFF from empty word %d would deadlock", i)
	}
	m.syncOps++
	return m.val[i], nil
}

// WriteXF writes unconditionally and sets full (initialization).
func (m *FEMemory) WriteXF(i int, v float64) error {
	if err := m.check(i); err != nil {
		return err
	}
	m.val[i] = v
	m.full[i] = true
	return nil
}

// Purge empties a word unconditionally.
func (m *FEMemory) Purge(i int) error {
	if err := m.check(i); err != nil {
		return err
	}
	m.full[i] = false
	return nil
}

// IsFull reports the word's state without synchronizing.
func (m *FEMemory) IsFull(i int) bool { return i >= 0 && i < len(m.full) && m.full[i] }

// AtomicAdd performs the MTA idiom for a synchronized accumulation:
// ReadFE (locks the word) followed by WriteEF of the sum. This is how a
// shared reduction target is updated safely from many streams.
func (m *FEMemory) AtomicAdd(i int, delta float64) error {
	v, err := m.ReadFE(i)
	if err != nil {
		return err
	}
	return m.WriteEF(i, v+delta)
}
