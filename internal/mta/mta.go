// Package mta models the Cray MTA-2 as the paper uses it (sections 3.3
// and 5.3): a multithreaded processor with 128 hardware streams, no
// data caches, and a uniform memory latency that is hidden — but only
// when the compiler actually multithreads the loops.
//
// The model has three pieces:
//
//   - a latency/throughput machine model (machine.go, below): a
//     parallelized loop issues one instruction per cycle as long as
//     enough ready streams cover the average instruction latency; a
//     serial loop exposes every instruction's full latency (memory
//     ~150 cycles, uncached — there is nothing else on an MTA);
//   - a loop "compiler" (loop.go): a loop carrying a scalar reduction
//     is NOT auto-parallelized; moving the reduction into the loop body
//     and adding the no-dependency directive makes it eligible —
//     exactly the code change the paper describes for step 2 of the
//     kernel, and the entire difference between the "fully" and
//     "partially multithreaded" curves of Figure 8;
//   - full/empty bits (femem.go): the MTA's word-level synchronization,
//     provided for completeness and exercised by the examples and
//     tests.
//
// Because the machine has no caches, the modeled runtime scales exactly
// with the instruction count — the smooth quadratic growth that
// Figure 9 contrasts with the Opteron's capacity-miss bend.
package mta

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/md"
	"repro/internal/sim"
)

// Threading selects how much of the kernel the compiler multithreads.
type Threading int

const (
	// FullyThreaded: the force loop's reduction was restructured and
	// annotated, so every loop runs across all streams.
	FullyThreaded Threading = iota
	// PartiallyThreaded: the force loop (step 2, the O(N²) part) runs
	// serially because the compiler "found a dependency on the
	// reduction operation"; the O(N) loops still parallelize.
	PartiallyThreaded
)

// String implements fmt.Stringer.
func (t Threading) String() string {
	switch t {
	case FullyThreaded:
		return "fully-mt"
	case PartiallyThreaded:
		return "partially-mt"
	default:
		return fmt.Sprintf("Threading(%d)", int(t))
	}
}

// Config parameterizes the machine.
type Config struct {
	Streams    int     // hardware streams per processor (128 on MTA-2)
	Processors int     // processor modules (the paper compares 1)
	ClockHz    float64 // ~200 MHz ("about 11x slower than the 2.2 GHz Opteron")

	MemLatencyCycles float64 // uniform memory latency (no caches)
	ALULatencyCycles float64 // pipeline depth for register operations

	Threading Threading
}

// DefaultConfig returns the single-processor MTA-2 model.
func DefaultConfig() Config {
	return Config{
		Streams:          128,
		Processors:       1,
		ClockHz:          200e6,
		MemLatencyCycles: 150,
		ALULatencyCycles: 21,
		Threading:        FullyThreaded,
	}
}

// Machine is the modeled system.
type Machine struct {
	cfg Config
}

// New validates cfg and returns the machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Streams <= 0 {
		return nil, fmt.Errorf("mta: streams must be positive, got %d", cfg.Streams)
	}
	if cfg.Processors <= 0 {
		return nil, fmt.Errorf("mta: processors must be positive, got %d", cfg.Processors)
	}
	if cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("mta: clock must be positive")
	}
	if cfg.MemLatencyCycles <= 0 || cfg.ALULatencyCycles <= 0 {
		return nil, fmt.Errorf("mta: latencies must be positive")
	}
	if cfg.Threading != FullyThreaded && cfg.Threading != PartiallyThreaded {
		return nil, fmt.Errorf("mta: unknown threading mode %d", int(cfg.Threading))
	}
	return &Machine{cfg: cfg}, nil
}

// Name implements device.Device.
func (m *Machine) Name() string { return "mta" }

// ClockHz returns the modeled clock frequency, for workloads built
// directly on LoopCycles (e.g. the sequence-alignment port).
func (m *Machine) ClockHz() float64 { return m.cfg.ClockHz }

// LoopCycles converts a loop's instruction ledger into machine cycles.
//
// Parallelized loops: the processor issues one instruction per cycle
// from whichever stream is ready. With S streams and average
// instruction latency L̄, utilization is min(1, S/L̄) — at 128 streams
// against L̄ of a few tens of cycles the processor is saturated, which
// is the MTA's whole design point. Multiple processors divide the work.
//
// Serial loops: a single stream can only issue an instruction after the
// previous one completes, so every instruction exposes its full
// latency: memory operations pay the uncached ~150 cycles, everything
// else the pipeline depth.
func (m *Machine) LoopCycles(l *sim.Ledger, parallelized bool) float64 {
	mem := float64(l.Count(sim.OpLoad) + l.Count(sim.OpStore))
	total := float64(l.Total())
	alu := total - mem
	if total == 0 {
		return 0
	}
	if parallelized {
		avgLat := (mem*m.cfg.MemLatencyCycles + alu*m.cfg.ALULatencyCycles) / total
		util := float64(m.cfg.Streams) / avgLat
		if util > 1 {
			util = 1
		}
		return total / util / float64(m.cfg.Processors)
	}
	return mem*m.cfg.MemLatencyCycles + alu*m.cfg.ALULatencyCycles
}

// LoopCyclesWithTrips is LoopCycles for loops whose iteration count may
// be smaller than the machine's stream count: a loop with only `trips`
// independent iterations can keep at most min(trips, Streams) streams
// busy, so short loops cannot hide the memory latency no matter how
// many streams the hardware has. This is the wavefront-startup effect
// in the Bokhari-Sauer sequence-alignment port, where early and late
// anti-diagonals have very few cells.
func (m *Machine) LoopCyclesWithTrips(l *sim.Ledger, parallelized bool, trips int) float64 {
	if !parallelized || trips <= 0 {
		return m.LoopCycles(l, parallelized)
	}
	mem := float64(l.Count(sim.OpLoad) + l.Count(sim.OpStore))
	total := float64(l.Total())
	alu := total - mem
	if total == 0 {
		return 0
	}
	streams := m.cfg.Streams
	if trips < streams {
		streams = trips
	}
	avgLat := (mem*m.cfg.MemLatencyCycles + alu*m.cfg.ALULatencyCycles) / total
	util := float64(streams) / avgLat
	if util > 1 {
		util = 1
	}
	return total / util / float64(m.cfg.Processors)
}

// Run implements device.Device: double-precision MD with the force loop
// either fully or partially multithreaded.
func (m *Machine) Run(w device.Workload) (*device.Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := md.Params[float64]{Box: w.State.Box, Cutoff: w.Cutoff, Dt: w.Dt}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		return nil, err
	}

	forceLoop := ForceLoopSpec(m.cfg.Threading == FullyThreaded)
	if m.cfg.Threading == FullyThreaded && !Parallelizes(forceLoop) {
		return nil, fmt.Errorf("mta: internal error: restructured force loop did not parallelize")
	}

	var cycles float64
	var merged sim.Ledger
	forces := func() float64 {
		pe, k := md.ComputeForcesFullCount(sys.P, sys.Pos, sys.Acc)
		var l sim.Ledger
		countForcePass(&l, sys.N(), k)
		cycles += m.LoopCycles(&l, Parallelizes(forceLoop))
		merged.Merge(&l)
		return pe
	}
	for s := 0; s < w.Steps; s++ {
		sys.StepWith(forces)
		// The O(N) integration loops have no reductions the compiler
		// cannot handle; they parallelize without modification in both
		// threading modes (section 5.3).
		var l sim.Ledger
		countIntegration(&l, sys.N())
		cycles += m.LoopCycles(&l, true)
		merged.Merge(&l)
	}

	bd := sim.NewBreakdown()
	bd.Add("compute", cycles/m.cfg.ClockHz)
	return &device.Result{
		Device:  m.Name(),
		Variant: m.cfg.Threading.String(),
		N:       sys.N(),
		Steps:   w.Steps,
		PE:      sys.PE,
		KE:      sys.KE,
		Time:    bd,
		Ledger:  merged,
	}, nil
}

// countForcePass accrues the per-pair instruction mix of the force
// evaluation on the MTA: uncached loads for the partner position, the
// branch-free minimum image the compiler emits (compares + selects),
// the squared distance, the on-the-fly distance (software square root
// sequence), the cutoff test, and the Lennard-Jones work for the k
// interacting ordered pairs.
func countForcePass(l *sim.Ledger, n int, k int64) {
	pairs := int64(n) * int64(n-1)
	l.Add(sim.OpLoad, 3*pairs)  // partner coordinates: every one a real memory op
	l.Add(sim.OpFAdd, 3*pairs)  // direction
	l.Add(sim.OpCmp, 3*pairs)   // minimum-image compares
	l.Add(sim.OpFAdd, 3*pairs)  // minimum-image selects/corrections
	l.Add(sim.OpFMul, 3*pairs)  // squares
	l.Add(sim.OpFAdd, 2*pairs)  // sum
	l.Add(sim.OpFSqrt, pairs)   // issue of the sqrt sequence head
	l.Add(sim.OpFMul, 14*pairs) // ...and its Newton-iteration body
	l.Add(sim.OpCmp, pairs)     // cutoff test
	l.Add(sim.OpInt, 2*pairs)   // loop control
	// Interacting pairs: LJ evaluation and accumulation. The MTA-2 has
	// no hardware floating divide: each of the two divides expands into
	// a ~12-instruction reciprocal-refinement sequence.
	l.Add(sim.OpFMul, 24*k)
	l.Add(sim.OpFMul, 9*k)
	l.Add(sim.OpFAdd, 7*k)
	l.Add(sim.OpStore, 3*int64(n))
}

// countIntegration accrues the O(N) velocity-Verlet work per step.
func countIntegration(l *sim.Ledger, n int) {
	an := int64(n)
	l.Add(sim.OpLoad, 9*an)
	l.Add(sim.OpStore, 9*an)
	l.Add(sim.OpFMul, 12*an)
	l.Add(sim.OpFAdd, 12*an)
	l.Add(sim.OpCmp, 6*an)
	l.Add(sim.OpInt, 4*an)
}

var _ device.Device = (*Machine)(nil)
