package mta

import (
	"testing"
	"testing/quick"
)

func TestXMTConfigValidation(t *testing.T) {
	if _, err := XMTConfig(0, 0.5); err == nil {
		t.Fatal("zero processors accepted")
	}
	if _, err := XMTConfig(XMTMaxCPUs+1, 0.5); err == nil {
		t.Fatal("too many processors accepted")
	}
	if _, err := XMTConfig(1, -0.1); err == nil {
		t.Fatal("negative locality accepted")
	}
	if _, err := XMTConfig(1, 1.1); err == nil {
		t.Fatal("locality > 1 accepted")
	}
}

func TestXMTConfigBlendsLatency(t *testing.T) {
	allLocal, err := XMTConfig(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	allRemote, err := XMTConfig(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if allLocal.MemLatencyCycles != xmtLocalLatency {
		t.Fatalf("local latency = %v", allLocal.MemLatencyCycles)
	}
	if allRemote.MemLatencyCycles != xmtRemoteLatency {
		t.Fatalf("remote latency = %v", allRemote.MemLatencyCycles)
	}
	mid, err := XMTConfig(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := (xmtLocalLatency + xmtRemoteLatency) / 2.0
	if mid.MemLatencyCycles != want {
		t.Fatalf("blended latency = %v, want %v", mid.MemLatencyCycles, want)
	}
	if allLocal.ClockHz != XMTClockHz {
		t.Fatalf("clock = %v", allLocal.ClockHz)
	}
}

func TestXMTBeatsMTAWithGoodLocality(t *testing.T) {
	// The paper's anticipation: one XMT processor with well-placed data
	// should beat the MTA-2 by about the clock ratio (2.5x).
	s, err := XMTProjection(0.1, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s < 2.0 || s > 3.0 {
		t.Fatalf("single-processor XMT speedup = %v, want ~2.5 (clock ratio)", s)
	}
}

func TestXMTLocalityMatters(t *testing.T) {
	// Section 3.3's warning: with a memory-heavy mix and poor locality,
	// 128 streams can no longer hide the blended latency and the win
	// erodes.
	good, err := XMTProjection(0.3, 1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := XMTProjection(0.3, 1, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if bad >= good {
		t.Fatalf("poor locality (%v) not worse than good locality (%v)", bad, good)
	}
	if bad >= 2.0 {
		t.Fatalf("all-remote XMT speedup = %v; latency wall missing", bad)
	}
}

func TestXMTScalesWithProcessors(t *testing.T) {
	one, err := XMTProjection(0.1, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	many, err := XMTProjection(0.1, 100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ratio := many / one
	if ratio < 99 || ratio > 101 {
		t.Fatalf("100-processor scaling = %v, want ~100 (parallel loops)", ratio)
	}
}

func TestXMTProjectionValidation(t *testing.T) {
	if _, err := XMTProjection(-0.1, 1, 0.5); err == nil {
		t.Fatal("negative memFrac accepted")
	}
	if _, err := XMTProjection(1.1, 1, 0.5); err == nil {
		t.Fatal("memFrac > 1 accepted")
	}
	if _, err := XMTProjection(0.1, 0, 0.5); err == nil {
		t.Fatal("bad processors accepted")
	}
}

func TestXMTSpeedupMonotoneInLocality(t *testing.T) {
	prop := func(l1Raw, l2Raw uint8) bool {
		l1 := float64(l1Raw) / 255
		l2 := float64(l2Raw) / 255
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		s1, err1 := XMTProjection(0.4, 1, l1)
		s2, err2 := XMTProjection(0.4, 1, l2)
		return err1 == nil && err2 == nil && s2 >= s1-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXMTMachineRunsMDFaster(t *testing.T) {
	// End to end: an XMT node with decent locality runs the MD workload
	// faster than the MTA-2 node.
	w := workload(t, 256, 2)
	base, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	xmtCfg, err := XMTConfig(1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	xmt, err := New(xmtCfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := xmt.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if rx.Seconds() >= rb.Seconds() {
		t.Fatalf("XMT (%v) not faster than MTA-2 (%v)", rx.Seconds(), rb.Seconds())
	}
	if rx.PE != rb.PE {
		t.Fatal("XMT changed the physics")
	}
}
