package mta

import "fmt"

// LoopSpec describes a source loop the way the MTA compiler's
// dependence analysis sees it. The compiler parallelizes a loop
// automatically unless it finds a loop-carried dependence; a scalar
// reduction (pe += ...) is such a dependence. The paper's fix for the
// force loop was to move the reduction into the loop body (so each
// iteration updates a private partial) and assert independence with a
// directive — both must be present for the compiler to accept it.
type LoopSpec struct {
	Name  string
	Trips int

	// Reduction marks a scalar accumulation carried across iterations
	// as written in the original source.
	Reduction bool
	// Restructured marks that the reduction was moved inside the loop
	// body into per-iteration partials (the paper's code change).
	Restructured bool
	// NoDepPragma marks the compiler directive asserting the loop has
	// no remaining dependences.
	NoDepPragma bool

	// OtherDependence marks any non-reduction loop-carried dependence
	// (e.g. a recurrence); such loops never parallelize automatically.
	OtherDependence bool
}

// Parallelizes reports whether the modeled compiler multithreads the
// loop.
func Parallelizes(l LoopSpec) bool {
	if l.OtherDependence && !l.NoDepPragma {
		return false
	}
	if l.Reduction {
		return l.Restructured && l.NoDepPragma
	}
	return true
}

// Diagnose returns the compiler message for a loop that does not
// parallelize, or "" if it does.
func Diagnose(l LoopSpec) string {
	if Parallelizes(l) {
		return ""
	}
	if l.Reduction && !l.Restructured {
		return fmt.Sprintf("loop %q not parallelized: dependence on reduction operation", l.Name)
	}
	if l.Reduction && !l.NoDepPragma {
		return fmt.Sprintf("loop %q not parallelized: restructured reduction needs a no-dependence directive", l.Name)
	}
	return fmt.Sprintf("loop %q not parallelized: loop-carried dependence", l.Name)
}

// ForceLoopSpec returns the step-2 force loop as the paper describes
// it: a reduction-carrying O(N²) loop, optionally with the paper's two
// fixes applied (restructured reduction + no-dependence directive).
func ForceLoopSpec(optimized bool) LoopSpec {
	return LoopSpec{
		Name:         "forces",
		Reduction:    true,
		Restructured: optimized,
		NoDepPragma:  optimized,
	}
}
