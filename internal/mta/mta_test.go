package mta

import (
	"math"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/sim"
)

func workload(t *testing.T, n, steps int) device.Workload {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 2.5
	if 2*cutoff > st.Box {
		cutoff = st.Box / 2 * 0.99
	}
	return device.Workload{State: st, Cutoff: cutoff, Dt: 0.004, Steps: steps}
}

func mustNew(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPhysicsMatchesReference(t *testing.T) {
	w := workload(t, 108, 10)
	res, err := mustNew(t, DefaultConfig()).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	p := md.Params[float64]{Box: w.State.Box, Cutoff: w.Cutoff, Dt: w.Dt}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.Steps; i++ {
		sys.StepWith(func() float64 { return md.ComputeForcesFull(sys.P, sys.Pos, sys.Acc) })
	}
	if res.PE != sys.PE || res.KE != sys.KE {
		t.Fatalf("physics mismatch: PE %v vs %v, KE %v vs %v", res.PE, sys.PE, res.KE, sys.KE)
	}
}

func TestFullyVsPartiallyThreaded(t *testing.T) {
	// Figure 8: the fully multithreaded version is far faster, and the
	// absolute gap grows with N.
	gap := func(n int) (full, partial float64) {
		w := workload(t, n, 2)
		cfgF := DefaultConfig()
		cfgP := DefaultConfig()
		cfgP.Threading = PartiallyThreaded
		rf, err := mustNew(t, cfgF).Run(w)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := mustNew(t, cfgP).Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return rf.Seconds(), rp.Seconds()
	}
	f1, p1 := gap(256)
	if p1 < 10*f1 {
		t.Fatalf("partial (%v) not ≫ full (%v) at 256 atoms", p1, f1)
	}
	f2, p2 := gap(512)
	if (p2 - f2) <= (p1 - f1) {
		t.Fatalf("absolute gap did not grow with N: %v -> %v", p1-f1, p2-f2)
	}
}

func TestRuntimeScalesQuadraticallyNoCacheBend(t *testing.T) {
	// Figure 9's MTA property: runtime growth tracks the FLOP count
	// with no cache-capacity bend.
	m := mustNew(t, DefaultConfig())
	small, err := m.Run(workload(t, 256, 2))
	if err != nil {
		t.Fatal(err)
	}
	big, err := m.Run(workload(t, 1024, 2))
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.Seconds() / small.Seconds()
	// Noticeably under 16 is expected: the O(N·neighbors) interacting-
	// pair work (with its software-divide sequences) dilutes the O(N²)
	// scan as N grows. What matters is that no cache bend pushes the
	// ratio above 16.
	if ratio < 12.5 || ratio > 16.2 {
		t.Fatalf("runtime ratio = %v, want ~13-16 (FLOP-proportional scaling)", ratio)
	}
}

func TestSaturationNeedsEnoughStreams(t *testing.T) {
	// With very few streams the processor cannot hide latency and the
	// parallel loop slows down proportionally.
	w := workload(t, 256, 1)
	cfgFew := DefaultConfig()
	cfgFew.Streams = 4
	rFew, err := mustNew(t, cfgFew).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := mustNew(t, DefaultConfig()).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if rFew.Seconds() < 3*rFull.Seconds() {
		t.Fatalf("4 streams (%v) should be several times slower than 128 (%v)",
			rFew.Seconds(), rFull.Seconds())
	}
}

func TestMoreProcessorsScaleParallelLoops(t *testing.T) {
	w := workload(t, 256, 2)
	cfg2 := DefaultConfig()
	cfg2.Processors = 2
	r1, err := mustNew(t, DefaultConfig()).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mustNew(t, cfg2).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r1.Seconds() / r2.Seconds()
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("2-processor speedup = %v, want ~2", ratio)
	}
}

func TestLoopCompilerAnalysis(t *testing.T) {
	// The paper's exact story: the original force loop does not
	// parallelize; restructuring alone or the pragma alone is not
	// enough; both together work.
	original := ForceLoopSpec(false)
	if Parallelizes(original) {
		t.Fatal("original reduction loop should not parallelize")
	}
	if !strings.Contains(Diagnose(original), "reduction") {
		t.Fatalf("diagnosis = %q", Diagnose(original))
	}
	restructOnly := original
	restructOnly.Restructured = true
	if Parallelizes(restructOnly) {
		t.Fatal("restructured loop without pragma should not parallelize")
	}
	pragmaOnly := original
	pragmaOnly.NoDepPragma = true
	if Parallelizes(pragmaOnly) {
		t.Fatal("pragma without restructuring should not parallelize")
	}
	fixed := ForceLoopSpec(true)
	if !Parallelizes(fixed) {
		t.Fatal("restructured+pragma loop should parallelize")
	}
	if Diagnose(fixed) != "" {
		t.Fatalf("diagnosis for good loop = %q", Diagnose(fixed))
	}
	// Plain loops parallelize; other dependences do not.
	if !Parallelizes(LoopSpec{Name: "plain"}) {
		t.Fatal("dependence-free loop should parallelize")
	}
	rec := LoopSpec{Name: "recurrence", OtherDependence: true}
	if Parallelizes(rec) {
		t.Fatal("recurrence should not parallelize")
	}
	if Diagnose(rec) == "" {
		t.Fatal("recurrence needs a diagnosis")
	}
}

func TestLoopCyclesSerialExposesLatency(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	var l sim.Ledger
	l.Add(sim.OpLoad, 100)
	l.Add(sim.OpFAdd, 100)
	serial := m.LoopCycles(&l, false)
	wantSerial := 100*150.0 + 100*21.0
	if serial != wantSerial {
		t.Fatalf("serial cycles = %v, want %v", serial, wantSerial)
	}
	parallel := m.LoopCycles(&l, true)
	if parallel != 200 { // saturated: one instruction per cycle
		t.Fatalf("parallel cycles = %v, want 200", parallel)
	}
}

func TestLoopCyclesEmptyLedger(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	var l sim.Ledger
	if m.LoopCycles(&l, true) != 0 || m.LoopCycles(&l, false) != 0 {
		t.Fatal("empty ledger should cost nothing")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.Streams = 0 },
		func(c *Config) { c.Processors = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MemLatencyCycles = 0 },
		func(c *Config) { c.ALULatencyCycles = 0 },
		func(c *Config) { c.Threading = Threading(9) },
	} {
		cfg := DefaultConfig()
		mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestThreadingString(t *testing.T) {
	if FullyThreaded.String() != "fully-mt" || PartiallyThreaded.String() != "partially-mt" {
		t.Fatal("Threading.String")
	}
	if Threading(7).String() == "" {
		t.Fatal("unknown Threading empty")
	}
}

func TestFEMemorySemantics(t *testing.T) {
	m := NewFEMemory(4)
	if m.Len() != 4 {
		t.Fatal("Len")
	}
	// Fresh words are empty: reads deadlock, writes succeed.
	if _, err := m.ReadFE(0); err == nil {
		t.Fatal("ReadFE from empty word succeeded")
	}
	if _, err := m.ReadFF(0); err == nil {
		t.Fatal("ReadFF from empty word succeeded")
	}
	if err := m.WriteEF(0, 1.5); err != nil {
		t.Fatal(err)
	}
	if !m.IsFull(0) {
		t.Fatal("word not full after WriteEF")
	}
	// Full word: WriteEF deadlocks, ReadFF leaves full, ReadFE empties.
	if err := m.WriteEF(0, 2); err == nil {
		t.Fatal("WriteEF to full word succeeded")
	}
	if v, err := m.ReadFF(0); err != nil || v != 1.5 {
		t.Fatalf("ReadFF = %v, %v", v, err)
	}
	if !m.IsFull(0) {
		t.Fatal("ReadFF emptied the word")
	}
	if v, err := m.ReadFE(0); err != nil || v != 1.5 {
		t.Fatalf("ReadFE = %v, %v", v, err)
	}
	if m.IsFull(0) {
		t.Fatal("ReadFE left the word full")
	}
}

func TestFEMemoryAtomicAdd(t *testing.T) {
	m := NewFEMemory(1)
	if err := m.WriteXF(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := m.AtomicAdd(0, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := m.ReadFF(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5050 {
		t.Fatalf("sum = %v, want 5050", v)
	}
	if m.SyncOps() == 0 {
		t.Fatal("sync ops not counted")
	}
}

func TestFEMemoryBounds(t *testing.T) {
	m := NewFEMemory(2)
	if err := m.WriteEF(-1, 0); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := m.ReadFE(2); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := m.Purge(5); err == nil {
		t.Fatal("out-of-range purge accepted")
	}
	if m.IsFull(-1) || m.IsFull(99) {
		t.Fatal("IsFull out of range should be false")
	}
}

func TestFEMemoryPurge(t *testing.T) {
	m := NewFEMemory(1)
	if err := m.WriteXF(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Purge(0); err != nil {
		t.Fatal(err)
	}
	if m.IsFull(0) {
		t.Fatal("word full after purge")
	}
	if err := m.WriteEF(0, 8); err != nil {
		t.Fatal("WriteEF after purge failed")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	w := workload(t, 64, 3)
	m := mustNew(t, DefaultConfig())
	a, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds() != b.Seconds() || a.PE != b.PE {
		t.Fatal("nondeterministic MTA result")
	}
}

func TestRunRejectsInvalidWorkload(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	if _, err := m.Run(device.Workload{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	w := workload(t, 32, 1)
	w.Dt = -1
	if _, err := m.Run(w); err == nil {
		t.Fatal("negative dt accepted")
	}
}

func TestLoopCyclesWithTripsEdges(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	var l sim.Ledger
	l.Add(sim.OpFAdd, 100)
	// Zero trips falls back to the plain model.
	if got, want := m.LoopCyclesWithTrips(&l, true, 0), m.LoopCycles(&l, true); got != want {
		t.Fatalf("trips=0: %v != %v", got, want)
	}
	// Serial mode ignores trips.
	if got, want := m.LoopCyclesWithTrips(&l, false, 5), m.LoopCycles(&l, false); got != want {
		t.Fatalf("serial: %v != %v", got, want)
	}
	// More trips than streams behaves like the plain saturated model.
	if got, want := m.LoopCyclesWithTrips(&l, true, 10000), m.LoopCycles(&l, true); got != want {
		t.Fatalf("wide: %v != %v", got, want)
	}
	// Empty ledger is free.
	var empty sim.Ledger
	if m.LoopCyclesWithTrips(&empty, true, 8) != 0 {
		t.Fatal("empty ledger not free")
	}
	// Few trips cannot hide latency: strictly slower than saturated.
	var mem sim.Ledger
	mem.Add(sim.OpLoad, 1000)
	if m.LoopCyclesWithTrips(&mem, true, 2) <= m.LoopCycles(&mem, true) {
		t.Fatal("2 trips not slower than saturated")
	}
}

func TestClockHzAccessor(t *testing.T) {
	if mustNew(t, DefaultConfig()).ClockHz() != DefaultConfig().ClockHz {
		t.Fatal("ClockHz mismatch")
	}
}
