#!/bin/sh
# bench_diff.sh — compare two BENCH_*.json trajectory files by bench
# name, printing per-metric new/old ratios. Thin wrapper over the
# cmd/benchdiff tool so the comparison logic stays in Go (and under
# test).
#
# Usage: scripts/bench_diff.sh OLD.json NEW.json
#   e.g. scripts/bench_diff.sh BENCH_PR5.json BENCH_PR6.json
set -eu

cd "$(dirname "$0")/.."
exec go run ./cmd/benchdiff "$@"
