#!/bin/sh
# verify.sh — the repository's full verification gate, in escalating
# cost order: compile, vet, the whole test suite, the race-detector
# pass over the sharded/recovery/scheduling paths (tier-1.5), and the
# project static-analysis suite (mdlint). Any failure fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (tier-1.5: md, parallel, faults, fsys, guard, fleet, mdrun, serve, chaos)"
go test -race -short ./internal/md/... ./internal/parallel/... \
    ./internal/faults/... ./internal/fsys/... ./internal/guard/... \
    ./internal/fleet/... ./internal/mdrun/... ./internal/serve/... \
    ./internal/chaos/...

echo "==> go test -bench=MixedPrecision -benchtime=1x (mixed-precision smoke)"
go test -run='^$' -bench=MixedPrecision -benchtime=1x .

echo "==> mdserve crash-recovery smoke (submit, kill -9, restart, resume, compare)"
go test -count=1 -run 'TestMDServeKillRestart' ./cmd/mdserve/

echo "==> mdchaos fixed-seed smoke campaign (12 schedules, all invariants)"
go test -count=1 -run 'TestChaosSmoke' ./internal/chaos/

echo "==> go run ./cmd/mdlint ./..."
go run ./cmd/mdlint ./...

echo "verify: all gates passed"
