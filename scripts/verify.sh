#!/bin/sh
# verify.sh — the repository's full verification gate, in escalating
# cost order: compile, vet, the whole test suite, the race-detector
# pass over the sharded/recovery/scheduling paths (tier-1.5), and the
# project static-analysis suite (mdlint). Any failure fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (tier-1.5: md, parallel, faults, fsys, guard, fleet, mdrun, serve, chaos)"
go test -race -short ./internal/md/... ./internal/parallel/... \
    ./internal/faults/... ./internal/fsys/... ./internal/guard/... \
    ./internal/fleet/... ./internal/mdrun/... ./internal/serve/... \
    ./internal/chaos/...

echo "==> go test -bench=MixedPrecision -benchtime=1x (mixed-precision smoke)"
go test -run='^$' -bench=MixedPrecision -benchtime=1x .

echo "==> mdserve crash-recovery smoke (submit, kill -9, restart, resume, compare)"
go test -count=1 -run 'TestMDServeKillRestart' ./cmd/mdserve/

echo "==> mdchaos fixed-seed smoke campaign (12 schedules, all invariants)"
go test -count=1 -run 'TestChaosSmoke' ./internal/chaos/

echo "==> build mdlint once (gates below reuse the binary)"
MDLINT="$(mktemp -d)/mdlint"
trap 'rm -rf "$(dirname "$MDLINT")"' EXIT
go build -o "$MDLINT" ./cmd/mdlint

echo "==> mdlint ./... (with BENCH_PR10.json lint/certification stats)"
"$MDLINT" -bench-json BENCH_PR10.json ./...

echo "==> go test -bench=StepAllocs -benchmem (zero-alloc steady-state stepping gate)"
STEPALLOCS_OUT="$(BENCH_JSON=BENCH_PR10.json go test -run='^$' -bench=StepAllocs -benchmem -benchtime=50x .)"
printf '%s\n' "$STEPALLOCS_OUT"
if printf '%s\n' "$STEPALLOCS_OUT" | grep -E ' [1-9][0-9]* allocs/op' >/dev/null; then
    echo "verify: BenchmarkStepAllocs reported a nonzero allocs/op — steady-state stepping must not allocate" >&2
    exit 1
fi

echo "==> mdlint -certify ./... (determinism certificate vs committed golden)"
"$MDLINT" -certify ./... > DETERMINISM_CERT.json.new
if ! diff -u DETERMINISM_CERT.json DETERMINISM_CERT.json.new; then
    rm -f DETERMINISM_CERT.json.new
    echo "verify: determinism certificate drifted from DETERMINISM_CERT.json" >&2
    echo "verify: regenerate with: go run ./cmd/mdlint -certify ./... > DETERMINISM_CERT.json" >&2
    exit 1
fi
rm -f DETERMINISM_CERT.json.new

echo "==> hotalloc ledger <= 10 sites (PR-10 SoA arena contract)"
SITES="$(sed -n 's/.*"count": *\([0-9][0-9]*\).*/\1/p' DETERMINISM_CERT.json | head -n 1)"
echo "hotalloc ledger: ${SITES:-?} sites"
if [ -z "$SITES" ] || [ "$SITES" -gt 10 ]; then
    echo "verify: hotalloc ledger has ${SITES:-unknown} sites, budget is 10" >&2
    exit 1
fi

echo "==> bench trajectory: BENCH_PR9.json -> BENCH_PR10.json"
scripts/bench_diff.sh BENCH_PR9.json BENCH_PR10.json

echo "verify: all gates passed"
